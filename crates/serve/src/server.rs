//! The NDJSON request/response protocol and the evaluation service.
//!
//! One JSON object per line in, one JSON object per line out. Four request
//! kinds:
//!
//! * `eval` — evaluate one explicit temporal mapping:
//!   `{"kind":"eval","id":1,"arch":"case16","layer":"64x96x640","mapping":{…}}`
//! * `search` — run a mapping-space search and return the best mapping:
//!   `{"kind":"search","id":2,"arch":"case16","layer":{"b":64,"k":96,"c":640},"objective":"latency"}`
//! * `whatif` — re-evaluate a base design's best mapping with overridden
//!   architecture knobs, incrementally:
//!   `{"kind":"whatif","id":3,"arch":"case16","layer":"64x96x640","set":["mem.GB.bw=2x"]}`.
//!   The base query is resolved against the fingerprinted result cache
//!   (computed and cached on a miss), the knob overrides become an
//!   [`ulm_model::InputDelta`], and only the invalidated lowering stages
//!   are recomputed for the modified architecture. The response reports
//!   base and modified latency/energy plus their deltas.
//! * `net` — schedule a whole layer sequence, optionally with depth-first
//!   fused segments whose intermediates stay pinned on chip:
//!   `{"kind":"net","id":4,"arch":"toy","net":"attention-decode","fuse":[{"layers":["logit","attend"],"pin":"LB"}]}`.
//!   The `fuse` field enters the fingerprint, so the same network with and
//!   without fusion are distinct cache identities. Network runs are not
//!   memoized (their result shape differs from the per-layer cache), but
//!   the fingerprint still lets clients correlate responses.
//! * `surrogate` — answer a fixed-architecture workload-dimension query
//!   from a cached arch-specialized [`SpecializedModel`]:
//!   `{"kind":"surrogate","id":5,"arch":"case16","layer":"128x96x640","template":"64x96x640"}`.
//!   The service keeps one specialization per `(arch, spatial, model,
//!   mapper, template, calibration)` key; requests matching the key skip
//!   the search + lowering entirely and run the closed-form kernel over
//!   the workload dims (bit-identical to the generic pipeline). The
//!   `reuse` field (default `true`) is deliberately *not* part of the
//!   fingerprint — like `mapper.parallelism`, it changes wall-clock,
//!   never the result. When the service was opened with a calibration
//!   for the request's architecture, its fitted constants are applied
//!   first and the calibration id enters the fingerprint.
//! * `stats` — report cache hit rate, queue depth and request-latency
//!   percentiles: `{"kind":"stats"}` (also accepted as `"/stats"`).
//!
//! Responses echo the request's `id` and carry `"ok":true` with a result, or
//! `"ok":false` with an `"error"` string. A malformed line yields an error
//! *response*, never a dropped connection.
//!
//! [`EvalService`] is the engine behind both transports: it routes every
//! request through a bounded [`WorkerPool`] and memoizes eval/search results
//! in a fingerprint-keyed [`ResultCache`]. [`run_batch`] drives it from any
//! `BufRead`/`Write` pair (the `ulm batch` subcommand wires stdin/stdout);
//! [`run_tcp`] serves `std::net::TcpListener` connections (`ulm serve`).

use crate::cache::{CacheStats, ResultCache};
use crate::fingerprint::{fingerprint_value, Fingerprint};
use crate::pool::{JobHandle, PoolStats, WorkerPool};
use crate::store::{CacheLog, ReplayReport};
use serde::{Serialize, Value};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use ulm_arch::{presets, ArchDesc, Architecture};
use ulm_energy::{EnergyModel, EnergyReport};
use ulm_error::UlmError;
pub use ulm_mapper::SearchStats;
use ulm_mapper::{Mapper, MapperOptions, Objective};
use ulm_mapping::{MappedLayer, Mapping, SpatialUnroll};
use ulm_model::{
    apply_overrides, Calibration, InputDelta, LatencyModel, LatencyReport, MappingShape,
    ModelOptions, ModelScratch, SpecializedModel,
};
use ulm_network::{InterLayerOverlap, NetworkEvaluator};
use ulm_reactor::{extract_line, Extracted};
use ulm_workload::{im2col, networks, Dim, Layer, NetworkDesc, Precision};

/// Configuration for an [`EvalService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Worker threads; `None` uses `std::thread::available_parallelism`.
    pub parallelism: Option<usize>,
    /// Maximum cached results.
    pub cache_capacity: usize,
    /// Job-queue slots; `None` uses twice the worker count.
    pub queue_capacity: Option<usize>,
    /// Directory for the durable cache log; `None` keeps the cache
    /// memory-only. Opening replays the log into the in-memory cache, and
    /// every newly computed result is appended to it.
    pub cache_dir: Option<PathBuf>,
    /// Emit per-request `elapsed_ms` in responses. Off, responses for
    /// identical request streams are byte-identical across runs and
    /// transports — the differential tests rely on that.
    pub include_timing: bool,
    /// Longest accepted request line in bytes; longer lines are answered
    /// with a `request/too-large` error and discarded.
    pub max_line_len: usize,
    /// Fitted per-port constants from `ulm calibrate`. Applied to
    /// `surrogate` requests whose architecture matches the calibration's;
    /// the calibration id then enters those fingerprints and `/stats`.
    pub calibration: Option<Calibration>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            parallelism: None,
            cache_capacity: 4096,
            queue_capacity: None,
            cache_dir: None,
            include_timing: true,
            max_line_len: 1 << 20,
            calibration: None,
        }
    }
}

/// Filename of the durable result log inside a cache directory.
pub const CACHE_LOG_FILE: &str = "results.ulmlog";

/// Append-count threshold that triggers an automatic log compaction.
const COMPACT_EVERY: u64 = 4096;

/// A memoizable evaluation result (the cache's value type).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EvalOutcome {
    /// The evaluated (for `eval`) or best-found (for `search`) mapping.
    pub mapping: Mapping,
    /// Intra-layer latency breakdown.
    pub latency: LatencyReport,
    /// Energy breakdown.
    pub energy: EnergyReport,
    /// Search metadata; `None` for direct `eval` requests.
    pub search: Option<SearchMeta>,
}

/// How a `search` request covered the mapping space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchMeta {
    /// True when the space was enumerated exhaustively.
    pub exhaustive: bool,
    /// The search's effort counters (the shared [`SearchStats`] from
    /// `ulm-mapper`, including the SoA lane count used).
    pub stats: SearchStats,
}

/// Incremental-evaluation counters across `whatif` requests, reported by
/// `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WhatifTotals {
    /// `whatif` requests successfully evaluated.
    pub requests: usize,
    /// Requests whose fingerprinted base entry was already cached, so only
    /// the incremental re-evaluation ran.
    pub delta_hits: usize,
    /// Requests that had to compute (and cache) the base design first.
    pub full_rebuilds: usize,
}

/// Surrogate fast-path counters across `surrogate` requests, reported by
/// `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SurrogateTotals {
    /// `surrogate` requests successfully answered.
    pub requests: usize,
    /// Requests answered from the cached specialization (the slot key —
    /// arch, spatial, model, mapper, template, calibration — matched).
    pub hits: usize,
    /// Requests that had to build a specialization first.
    pub misses: usize,
}

/// Cumulative search effort across every *executed* (non-cached) search
/// request, reported by `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchTotals {
    /// Search requests actually executed (cache misses).
    pub searches: usize,
    /// Effort counters summed across them (the shared [`SearchStats`];
    /// `batch_lanes` reports the widest lane count used).
    pub stats: SearchStats,
}

/// Request-latency summary for `/stats`, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Completed eval/search/whatif requests measured.
    pub count: usize,
    /// Fastest request.
    pub min_ms: f64,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// 95th percentile (nearest-rank).
    pub p95_ms: f64,
    /// Slowest request.
    pub max_ms: f64,
}

impl LatencySummary {
    fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary {
                count: 0,
                min_ms: 0.0,
                mean_ms: 0.0,
                p95_ms: 0.0,
                max_ms: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let rank = ((count as f64 * 0.95).ceil() as usize).clamp(1, count);
        LatencySummary {
            count,
            min_ms: sorted[0],
            mean_ms: sorted.iter().sum::<f64>() / count as f64,
            p95_ms: sorted[rank - 1],
            max_ms: sorted[count - 1],
        }
    }
}

// ---------------------------------------------------------------------------
// Request parsing
// ---------------------------------------------------------------------------

/// A fully resolved evaluation query (everything that enters the
/// fingerprint).
struct Query {
    arch: Architecture,
    spatial: SpatialUnroll,
    layer: Layer,
    model: ModelOptions,
    mode: QueryMode,
}

enum QueryMode {
    Eval(Box<Mapping>),
    Search {
        objective: Objective,
        mapper: MapperOptions,
        /// Worker threads inside the ordering search. Deliberately NOT
        /// part of the fingerprint: the result is identical at every
        /// thread count, so requests differing only here must share a
        /// cache entry.
        parallelism: Option<usize>,
        /// SoA lane count inside the ordering search. Like `parallelism`,
        /// deliberately NOT part of the fingerprint: the batched kernel is
        /// bit-identical to the scalar path at every lane count.
        batch_lanes: Option<usize>,
    },
}

/// A whole-network scheduling query (the `net` request kind): a layer
/// sequence plus optional depth-first fused segments and an inter-layer
/// overlap policy. Unlike [`Query`] these are executed directly (the
/// per-layer result cache's value shape does not fit a network report),
/// but they still carry a fingerprint — and the `fuse` field is part of
/// it, so fused and unfused runs of the same network never alias.
struct NetQuery {
    arch: Architecture,
    spatial: SpatialUnroll,
    layers: Vec<Layer>,
    fusion: Vec<ulm_mapping::FusedSegment>,
    overlap: InterLayerOverlap,
    objective: Objective,
    mapper: MapperOptions,
    /// Threads for the per-layer searches; not fingerprinted (the result
    /// is identical at every thread count).
    parallelism: Option<usize>,
}

/// A fixed-architecture workload-dimension query (the `surrogate` request
/// kind), answered through a cached [`SpecializedModel`] when possible.
struct SurrogateQuery {
    arch: Architecture,
    spatial: SpatialUnroll,
    /// The query point; its dims are the only workload-varying input.
    layer: Layer,
    /// Dims of the layer whose best mapping defines the specialization
    /// shape (defaults to the query dims).
    template: (u64, u64, u64),
    model: ModelOptions,
    mapper: MapperOptions,
    /// Reuse the service's cached specialization when its key matches.
    /// Deliberately NOT part of the fingerprint: like
    /// `mapper.parallelism`, reuse changes wall-clock, never the result —
    /// the specialized kernel is bit-identical to the generic pipeline.
    reuse: bool,
}

enum Request {
    Query(Box<Query>),
    Net(Box<NetQuery>),
    WhatIf { base: Box<Query>, set: Vec<String> },
    Surrogate(Box<SurrogateQuery>),
    Stats,
}

fn field<'a>(obj: &'a Value, key: &str) -> Option<&'a Value> {
    match obj.get(key) {
        Some(Value::Null) | None => None,
        Some(v) => Some(v),
    }
}

fn parse_u64(v: &Value, what: &str) -> Result<u64, UlmError> {
    v.as_u64().ok_or_else(|| {
        UlmError::invalid_request(format!("`{what}` must be a non-negative integer"))
    })
}

/// Resolves the `arch` field: a preset name (with optional top-level
/// `gb_bw`) or an inline architecture-description object.
fn parse_arch(req: &Value) -> Result<(Architecture, SpatialUnroll), UlmError> {
    let default = Value::String(String::new());
    let spec = field(req, "arch").unwrap_or(&default);
    match spec {
        Value::String(name) => {
            let gb_bw = match field(req, "gb_bw") {
                Some(v) => parse_u64(v, "gb_bw")?,
                None => 128,
            };
            let chip = match name.as_str() {
                "" | "case16" => presets::scaled_case_study_chip(16, gb_bw),
                "case32" => presets::scaled_case_study_chip(32, gb_bw),
                "case64" => presets::scaled_case_study_chip(64, gb_bw),
                "validation" => presets::validation_chip(),
                "toy" => presets::toy_chip(),
                "fusion" => presets::fusion_chip(),
                other => {
                    return Err(UlmError::invalid_request(format!(
                        "unknown arch preset `{other}` (case16|case32|case64|validation|toy|fusion)"
                    )))
                }
            };
            Ok((chip.arch, SpatialUnroll::new(chip.spatial)))
        }
        obj @ Value::Object(_) => {
            let desc: ArchDesc = serde::Deserialize::from_value(obj)
                .map_err(|e| UlmError::invalid_request(format!("invalid arch description: {e}")))?;
            let (arch, spatial) = desc.build().map_err(UlmError::from)?;
            Ok((arch, SpatialUnroll::new(spatial)))
        }
        _ => Err(UlmError::invalid_request(
            "`arch` must be a preset name or an object",
        )),
    }
}

fn parse_precision(name: &str) -> Result<Precision, UlmError> {
    match name {
        "int8_out24" => Ok(Precision::int8_out24()),
        "int8_acc24" => Ok(Precision::int8_acc24()),
        other => Err(UlmError::invalid_request(format!(
            "unknown precision `{other}` (int8_out24|int8_acc24)"
        ))),
    }
}

/// Rejects zero sizes before they reach `Layer::matmul` (which asserts
/// positivity and would panic the worker).
fn check_dims(b: u64, k: u64, c: u64) -> Result<(), UlmError> {
    if b == 0 || k == 0 || c == 0 {
        return Err(UlmError::invalid_request(format!(
            "layer dimensions must be positive, got {b}x{k}x{c}"
        )));
    }
    Ok(())
}

/// Resolves the `layer` field: `"BxKxC"` shorthand or an object with
/// `b`/`k`/`c` and optional `precision`/`name`.
fn parse_layer(req: &Value) -> Result<Layer, UlmError> {
    let spec = field(req, "layer").ok_or_else(|| UlmError::invalid_request("missing `layer`"))?;
    match spec {
        Value::String(text) => {
            let parts: Vec<&str> = text.split('x').collect();
            let bad =
                || UlmError::invalid_request(format!("`layer` string must be BxKxC, got `{text}`"));
            if parts.len() != 3 {
                return Err(bad());
            }
            let b: u64 = parts[0].parse().map_err(|_| bad())?;
            let k: u64 = parts[1].parse().map_err(|_| bad())?;
            let c: u64 = parts[2].parse().map_err(|_| bad())?;
            check_dims(b, k, c)?;
            Ok(Layer::matmul(
                format!("({b},{k},{c})"),
                b,
                k,
                c,
                Precision::int8_out24(),
            ))
        }
        Value::Object(_) => {
            let need = |key: &str| UlmError::invalid_request(format!("`layer` needs `{key}`"));
            let b = parse_u64(field(spec, "b").ok_or_else(|| need("b"))?, "layer.b")?;
            let k = parse_u64(field(spec, "k").ok_or_else(|| need("k"))?, "layer.k")?;
            let c = parse_u64(field(spec, "c").ok_or_else(|| need("c"))?, "layer.c")?;
            check_dims(b, k, c)?;
            let precision = match field(spec, "precision") {
                Some(Value::String(p)) => parse_precision(p)?,
                Some(_) => {
                    return Err(UlmError::invalid_request(
                        "`layer.precision` must be a string",
                    ))
                }
                None => Precision::int8_out24(),
            };
            let name = match field(spec, "name") {
                Some(Value::String(n)) => n.clone(),
                _ => format!("({b},{k},{c})"),
            };
            Ok(Layer::matmul(name, b, k, c, precision))
        }
        _ => Err(UlmError::invalid_request(
            "`layer` must be a BxKxC string or an object",
        )),
    }
}

/// Optional `spatial` override: `[["K",16],["B",8]]`.
fn parse_spatial(req: &Value, default: SpatialUnroll) -> Result<SpatialUnroll, UlmError> {
    match field(req, "spatial") {
        None => Ok(default),
        Some(v) => {
            let pairs: Vec<(Dim, u64)> = serde::Deserialize::from_value(v)
                .map_err(|e| UlmError::invalid_request(format!("invalid `spatial`: {e}")))?;
            if pairs.iter().any(|&(_, f)| f == 0) {
                return Err(UlmError::invalid_request(
                    "`spatial` factors must be positive",
                ));
            }
            Ok(SpatialUnroll::new(pairs))
        }
    }
}

/// Optional `model` overrides, applied on top of [`ModelOptions::default`].
fn parse_model(req: &Value) -> Result<ModelOptions, UlmError> {
    let mut opts = ModelOptions::default();
    let Some(spec) = field(req, "model") else {
        return Ok(opts);
    };
    let Value::Object(entries) = spec else {
        return Err(UlmError::invalid_request("`model` must be an object"));
    };
    for (key, v) in entries {
        let flag = v
            .as_bool()
            .ok_or_else(|| UlmError::invalid_request(format!("`model.{key}` must be a boolean")));
        match key.as_str() {
            "bw_aware" => opts.bw_aware = flag?,
            "compute_links" => opts.compute_links = flag?,
            "phase_aware_z" => opts.phase_aware_z = flag?,
            "eq2_oversubscription_bound" => opts.eq2_oversubscription_bound = flag?,
            "max_intervals" => {
                opts.union.max_intervals = parse_u64(v, "model.max_intervals")?;
            }
            other => {
                return Err(UlmError::invalid_request(format!(
                    "unknown model option `{other}`"
                )))
            }
        }
    }
    Ok(opts)
}

/// Optional `mapper` overrides, applied on top of [`MapperOptions::default`]
/// (with `bw_aware` following the model options unless set explicitly).
fn parse_mapper(
    req: &Value,
    model: &ModelOptions,
) -> Result<(MapperOptions, Option<usize>, Option<usize>), UlmError> {
    let mut opts = MapperOptions {
        bw_aware: model.bw_aware,
        ..MapperOptions::default()
    };
    let mut parallelism = None;
    let mut batch_lanes = None;
    let Some(spec) = field(req, "mapper") else {
        return Ok((opts, parallelism, batch_lanes));
    };
    let Value::Object(entries) = spec else {
        return Err(UlmError::invalid_request("`mapper` must be an object"));
    };
    for (key, v) in entries {
        match key.as_str() {
            "max_exhaustive" => {
                opts.max_exhaustive = u128::from(parse_u64(v, "mapper.max_exhaustive")?);
            }
            "samples" => opts.samples = parse_u64(v, "mapper.samples")? as usize,
            "seed" => opts.seed = parse_u64(v, "mapper.seed")?,
            "bw_aware" => {
                opts.bw_aware = v.as_bool().ok_or_else(|| {
                    UlmError::invalid_request("`mapper.bw_aware` must be a boolean")
                })?;
            }
            "parallelism" => {
                parallelism = match parse_u64(v, "mapper.parallelism")? {
                    0 => None,
                    n => Some(n as usize),
                };
            }
            "batch_lanes" => {
                batch_lanes = match parse_u64(v, "mapper.batch_lanes")? {
                    0 => None,
                    n => Some(n as usize),
                };
            }
            other => {
                return Err(UlmError::invalid_request(format!(
                    "unknown mapper option `{other}`"
                )))
            }
        }
    }
    Ok((opts, parallelism, batch_lanes))
}

fn parse_objective(req: &Value) -> Result<Objective, UlmError> {
    match field(req, "objective") {
        None => Ok(Objective::Latency),
        Some(Value::String(s)) => match s.to_ascii_lowercase().as_str() {
            "latency" => Ok(Objective::Latency),
            "energy" => Ok(Objective::Energy),
            "edp" => Ok(Objective::Edp),
            other => Err(UlmError::invalid_request(format!(
                "unknown objective `{other}` (latency|energy|edp)"
            ))),
        },
        Some(_) => Err(UlmError::invalid_request("`objective` must be a string")),
    }
}

/// The `set` field of a `whatif` request: a non-empty array of
/// `mem.<name>.<knob>=<value>` override strings.
fn parse_set(req: &Value) -> Result<Vec<String>, UlmError> {
    let spec = field(req, "set")
        .ok_or_else(|| UlmError::invalid_request("`whatif` needs a `set` array of overrides"))?;
    let Value::Array(items) = spec else {
        return Err(UlmError::invalid_request("`set` must be an array"));
    };
    let mut set = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::String(s) => set.push(s.clone()),
            _ => {
                return Err(UlmError::invalid_request(
                    "`set` entries must be strings like `mem.GB.bw=2x`",
                ))
            }
        }
    }
    if set.is_empty() {
        return Err(UlmError::invalid_request("`set` must not be empty"));
    }
    Ok(set)
}

/// Parses the common eval/search query fields. `eval_mode` selects an
/// explicit-mapping evaluation over a mapping search.
fn parse_query(req: &Value, eval_mode: bool) -> Result<Query, UlmError> {
    let (arch, default_spatial) = parse_arch(req)?;
    let spatial = parse_spatial(req, default_spatial)?;
    let layer = parse_layer(req)?;
    let model = parse_model(req)?;
    let mode = if eval_mode {
        let spec = field(req, "mapping")
            .ok_or_else(|| UlmError::invalid_request("`eval` needs a `mapping`"))?;
        let mapping: Mapping = serde::Deserialize::from_value(spec)
            .map_err(|e| UlmError::invalid_request(format!("invalid `mapping`: {e}")))?;
        QueryMode::Eval(Box::new(mapping))
    } else {
        let (mapper, parallelism, batch_lanes) = parse_mapper(req, &model)?;
        QueryMode::Search {
            objective: parse_objective(req)?,
            mapper,
            parallelism,
            batch_lanes,
        }
    };
    Ok(Query {
        arch,
        spatial,
        layer,
        model,
        mode,
    })
}

/// Resolves the `net` field: a built-in preset name or an inline network
/// description object. Conv layers are Im2Col-lowered to matmuls, same as
/// the CLI's `ulm network`.
fn parse_net_layers(req: &Value) -> Result<Vec<Layer>, UlmError> {
    let spec = field(req, "net")
        .ok_or_else(|| UlmError::invalid_request("`net` request needs a `net` field"))?;
    let raw = match spec {
        Value::String(name) => match name.as_str() {
            "handtracking" => return Ok(networks::handtracking_validation_layers()),
            "attention-prefill" => return Ok(networks::attention_prefill()),
            "attention-decode" => return Ok(networks::attention_decode()),
            "mobilenet" => networks::mobilenet_v1(224, 1),
            "resnet18" => networks::resnet18(224, 1),
            "alexnet" => networks::alexnet(1),
            other => {
                return Err(UlmError::invalid_request(format!(
                    "unknown net preset `{other}` \
                     (handtracking|attention-prefill|attention-decode|mobilenet|resnet18|alexnet)"
                )))
            }
        },
        obj @ Value::Object(_) => {
            let desc: NetworkDesc = serde::Deserialize::from_value(obj)
                .map_err(|e| UlmError::invalid_request(format!("invalid net description: {e}")))?;
            desc.to_layers().map_err(UlmError::from)?
        }
        _ => {
            return Err(UlmError::invalid_request(
                "`net` must be a preset name or an object",
            ))
        }
    };
    let mut layers = Vec::with_capacity(raw.len());
    for l in raw {
        layers.push(im2col(&l).map_err(|e| UlmError::invalid_request(e.to_string()))?);
    }
    Ok(layers)
}

/// The optional `fuse` field: an array of fused-segment descriptors,
/// `[{"layers":["logit","attend"],"pin":"LB"}, …]`. Validation against
/// the network and chip happens at evaluation time.
fn parse_fuse(req: &Value) -> Result<Vec<ulm_mapping::FusedSegment>, UlmError> {
    match field(req, "fuse") {
        None => Ok(Vec::new()),
        Some(v) => serde::Deserialize::from_value(v)
            .map_err(|e| UlmError::invalid_request(format!("invalid `fuse`: {e}"))),
    }
}

fn parse_overlap(req: &Value) -> Result<InterLayerOverlap, UlmError> {
    match field(req, "overlap") {
        None => Ok(InterLayerOverlap::None),
        Some(Value::String(s)) => match s.as_str() {
            "none" => Ok(InterLayerOverlap::None),
            "weight-prefetch" => Ok(InterLayerOverlap::WeightPrefetch),
            other => Err(UlmError::invalid_request(format!(
                "unknown overlap `{other}` (none|weight-prefetch)"
            ))),
        },
        Some(_) => Err(UlmError::invalid_request("`overlap` must be a string")),
    }
}

fn parse_surrogate_query(req: &Value) -> Result<SurrogateQuery, UlmError> {
    let (arch, default_spatial) = parse_arch(req)?;
    let spatial = parse_spatial(req, default_spatial)?;
    let layer = parse_layer(req)?;
    let model = parse_model(req)?;
    let (mapper, _parallelism, _batch_lanes) = parse_mapper(req, &model)?;
    let template = match field(req, "template") {
        None => (
            layer.shape().dim(Dim::B),
            layer.shape().dim(Dim::K),
            layer.shape().dim(Dim::C),
        ),
        Some(Value::String(text)) => {
            let parts: Vec<&str> = text.split('x').collect();
            let bad =
                || UlmError::invalid_request(format!("`template` must be BxKxC, got `{text}`"));
            if parts.len() != 3 {
                return Err(bad());
            }
            let b: u64 = parts[0].parse().map_err(|_| bad())?;
            let k: u64 = parts[1].parse().map_err(|_| bad())?;
            let c: u64 = parts[2].parse().map_err(|_| bad())?;
            check_dims(b, k, c)?;
            (b, k, c)
        }
        Some(_) => {
            return Err(UlmError::invalid_request(
                "`template` must be a BxKxC string",
            ))
        }
    };
    let reuse = match field(req, "reuse") {
        None => true,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| UlmError::invalid_request("`reuse` must be a boolean"))?,
    };
    Ok(SurrogateQuery {
        arch,
        spatial,
        layer,
        template,
        model,
        mapper,
        reuse,
    })
}

fn parse_net_query(req: &Value) -> Result<NetQuery, UlmError> {
    let (arch, default_spatial) = parse_arch(req)?;
    let spatial = parse_spatial(req, default_spatial)?;
    let layers = parse_net_layers(req)?;
    let model = parse_model(req)?;
    let (mapper, parallelism, _batch_lanes) = parse_mapper(req, &model)?;
    Ok(NetQuery {
        arch,
        spatial,
        layers,
        fusion: parse_fuse(req)?,
        overlap: parse_overlap(req)?,
        objective: parse_objective(req)?,
        mapper,
        parallelism,
    })
}

fn parse_request(req: &Value) -> Result<Request, UlmError> {
    if !matches!(req, Value::Object(_)) {
        return Err(UlmError::invalid_request("request must be a JSON object"));
    }
    let kind = match field(req, "kind") {
        Some(Value::String(k)) => k.as_str(),
        Some(_) => return Err(UlmError::invalid_request("`kind` must be a string")),
        // Requests with a `mapping` default to eval, ones with a `net`
        // to a network run, everything else to search, so minimal lines
        // stay minimal.
        None => {
            if field(req, "mapping").is_some() {
                "eval"
            } else if field(req, "net").is_some() {
                "net"
            } else {
                "search"
            }
        }
    };
    match kind {
        "stats" | "/stats" => Ok(Request::Stats),
        "eval" | "search" => Ok(Request::Query(Box::new(parse_query(req, kind == "eval")?))),
        "net" => Ok(Request::Net(Box::new(parse_net_query(req)?))),
        // The base of a `whatif` follows the same defaulting rule: an
        // explicit `mapping` evaluates that mapping, otherwise the best
        // mapping is searched (and cached) first.
        "whatif" => Ok(Request::WhatIf {
            set: parse_set(req)?,
            base: Box::new(parse_query(req, field(req, "mapping").is_some())?),
        }),
        "surrogate" => Ok(Request::Surrogate(Box::new(parse_surrogate_query(req)?))),
        other => Err(UlmError::invalid_request(format!(
            "unknown kind `{other}` (eval|search|whatif|net|surrogate|stats)"
        ))),
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

impl Query {
    /// The canonical value tree that identifies this query. Everything that
    /// can change the result is included.
    fn fingerprint(&self) -> Fingerprint {
        let mut entries = vec![
            ("arch".to_string(), self.arch.to_value()),
            ("spatial".to_string(), self.spatial.to_value()),
            ("layer".to_string(), self.layer.to_value()),
            ("model".to_string(), self.model.to_value()),
        ];
        match &self.mode {
            QueryMode::Eval(mapping) => {
                entries.push(("op".to_string(), Value::String("eval".into())));
                entries.push(("mapping".to_string(), mapping.to_value()));
            }
            QueryMode::Search {
                objective, mapper, ..
            } => {
                entries.push(("op".to_string(), Value::String("search".into())));
                entries.push(("objective".to_string(), objective.to_value()));
                entries.push(("mapper".to_string(), mapper.to_value()));
            }
        }
        fingerprint_value(&Value::Object(entries))
    }

    fn execute(&self) -> Result<EvalOutcome, UlmError> {
        match &self.mode {
            QueryMode::Eval(mapping) => {
                let view = MappedLayer::new(&self.layer, &self.arch, mapping)?;
                // One lowering feeds both models.
                let model = LatencyModel::with_options(self.model);
                let lowered = ulm_model::LoweredLayer::build(&view, model.dtl_options());
                let latency = model.evaluate_lowered(&view, &lowered);
                let energy = EnergyModel::new().evaluate_lowered(&view, &lowered);
                Ok(EvalOutcome {
                    mapping: (**mapping).clone(),
                    latency,
                    energy,
                    search: None,
                })
            }
            QueryMode::Search {
                objective,
                mapper,
                parallelism,
                batch_lanes,
            } => {
                let result = Mapper::new(&self.arch, &self.layer, self.spatial.clone())
                    .with_options(*mapper)
                    .with_parallelism(*parallelism)
                    .with_batch_lanes(*batch_lanes)
                    .search(*objective)?;
                Ok(EvalOutcome {
                    mapping: result.best.mapping,
                    latency: result.best.latency,
                    energy: result.best.energy,
                    search: Some(SearchMeta {
                        exhaustive: result.exhaustive,
                        stats: result.stats,
                    }),
                })
            }
        }
    }
}

impl NetQuery {
    /// The canonical value tree identifying this network run. The `fuse`
    /// descriptors are included — fused and unfused evaluations of the
    /// same network are different results and must never share an
    /// identity. Thread counts are excluded, same as [`Query`].
    fn fingerprint(&self) -> Fingerprint {
        let entries = vec![
            ("op".to_string(), Value::String("net".into())),
            ("arch".to_string(), self.arch.to_value()),
            ("spatial".to_string(), self.spatial.to_value()),
            (
                "layers".to_string(),
                Value::Array(self.layers.iter().map(Serialize::to_value).collect()),
            ),
            ("fuse".to_string(), self.fusion.to_value()),
            ("overlap".to_string(), self.overlap.to_value()),
            ("objective".to_string(), self.objective.to_value()),
            ("mapper".to_string(), self.mapper.to_value()),
        ];
        fingerprint_value(&Value::Object(entries))
    }

    fn execute(&self) -> Result<Vec<(String, Value)>, UlmError> {
        let report = NetworkEvaluator::new(&self.arch, self.spatial.clone())
            .with_overlap(self.overlap)
            .with_objective(self.objective)
            .with_mapper_options(self.mapper)
            .with_parallelism(self.parallelism)
            .with_fusion(self.fusion.clone())
            .evaluate(&self.layers)?;
        let layers = report
            .layers
            .iter()
            .map(|l| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(l.name.clone())),
                    ("cc_total".to_string(), Value::F64(l.latency.cc_total)),
                    ("energy_fj".to_string(), Value::F64(l.energy.total_fj)),
                    ("hidden_preload".to_string(), Value::U64(l.hidden_preload)),
                ])
            })
            .collect();
        Ok(vec![
            ("kind".to_string(), Value::String("net".into())),
            (
                "fingerprint".to_string(),
                Value::String(self.fingerprint().to_string()),
            ),
            (
                "total_cycles".to_string(),
                Value::F64(report.total_cycles()),
            ),
            (
                "sequential_cycles".to_string(),
                Value::F64(report.sequential_cycles()),
            ),
            ("total_fj".to_string(), Value::F64(report.total_fj())),
            ("utilization".to_string(), Value::F64(report.utilization())),
            ("segments".to_string(), report.segments.to_value()),
            ("layers".to_string(), Value::Array(layers)),
        ])
    }
}

impl SurrogateQuery {
    /// The inputs the cached specialization depends on — everything
    /// except the workload dims (and `reuse`). Also the prefix of the
    /// result fingerprint. The calibration id is included when the
    /// service applied one: calibrated and uncalibrated answers must
    /// never alias.
    fn slot_entries(&self, calibration_id: Option<&str>) -> Vec<(String, Value)> {
        let (tb, tk, tc) = self.template;
        let mut entries = vec![
            ("op".to_string(), Value::String("surrogate".into())),
            ("arch".to_string(), self.arch.to_value()),
            ("spatial".to_string(), self.spatial.to_value()),
            ("model".to_string(), self.model.to_value()),
            ("mapper".to_string(), self.mapper.to_value()),
            (
                "template".to_string(),
                Value::String(format!("{tb}x{tk}x{tc}")),
            ),
            ("precision".to_string(), self.layer.precision().to_value()),
        ];
        if let Some(id) = calibration_id {
            entries.push(("calibration".to_string(), Value::String(id.to_string())));
        }
        entries
    }

    /// Key of the service's specialization slot.
    fn slot_key(&self, calibration_id: Option<&str>) -> Fingerprint {
        fingerprint_value(&Value::Object(self.slot_entries(calibration_id)))
    }

    /// The canonical identity of this query's *result*: the slot inputs
    /// plus the workload dims. `reuse` is deliberately absent — requests
    /// differing only in it produce identical results.
    fn fingerprint(&self, calibration_id: Option<&str>) -> Fingerprint {
        let mut entries = self.slot_entries(calibration_id);
        entries.push(("layer".to_string(), self.layer.to_value()));
        fingerprint_value(&Value::Object(entries))
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// Decodes one persisted log payload back into an outcome; `None` when
/// the JSON is unreadable or no longer matches the outcome shape.
fn decode_outcome(payload: &[u8]) -> Option<EvalOutcome> {
    let text = std::str::from_utf8(payload).ok()?;
    let value: Value = serde_json::from_str(text).ok()?;
    serde::Deserialize::from_value(&value).ok()
}

/// Serializes the cache's current entries into log-ready `(fingerprint,
/// payload)` pairs.
fn encode_snapshot(cache: &ResultCache<EvalOutcome>) -> Vec<(u128, Vec<u8>)> {
    cache
        .snapshot()
        .into_iter()
        .filter_map(|(fp, outcome)| {
            serde_json::to_string(&outcome.to_value())
                .ok()
                .map(|json| (fp, json.into_bytes()))
        })
        .collect()
}

/// One protocol-shaped error line (`id:null`, `ok:false`, message + code)
/// for failures that happen before a request can be parsed at all —
/// oversized lines, over-capacity rejections.
fn error_response(err: &UlmError) -> String {
    let entries = vec![
        ("id".to_string(), Value::Null),
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::String(err.to_string())),
        ("code".to_string(), Value::String(err.code().to_string())),
    ];
    serde_json::to_string(&Value::Object(entries)).expect("printing is infallible")
}

/// Coordination point for concurrent identical queries (single-flight):
/// the first thread to miss computes; the rest wait and then read the
/// cache instead of re-running the same search.
struct Inflight {
    done: Mutex<bool>,
    cv: std::sync::Condvar,
}

/// Durable-store state and counters for a disk-backed service.
struct DiskState {
    log: Mutex<CacheLog>,
    /// Entries successfully replayed into the cache at startup.
    warmed: usize,
    /// What the startup replay found on disk.
    replay: ReplayReport,
    /// CRC-valid records whose payload would not decode (skipped).
    decode_failures: u64,
    /// Records appended this run.
    appends: AtomicU64,
    /// Appends that failed at the I/O layer (the request still succeeds).
    append_errors: AtomicU64,
    /// Automatic compactions this run.
    compactions: AtomicU64,
}

/// Counters describing the durable cache log, reported by `/stats` and
/// returned by [`EvalService::disk_stats`].
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct DiskStats {
    /// Entries replayed into the in-memory cache at startup.
    pub warmed: usize,
    /// Valid records the startup replay read (before deduplication).
    pub replayed_records: u64,
    /// Stable code of the tail corruption the replay recovered from, if
    /// any (e.g. `cache/truncated`).
    pub recovered_from: Option<String>,
    /// CRC-valid records whose payload would not decode (skipped).
    pub decode_failures: u64,
    /// Records appended this run.
    pub appends: u64,
    /// Appends that failed at the I/O layer.
    pub append_errors: u64,
    /// Automatic compactions this run.
    pub compactions: u64,
}

/// The service's cached specialization: one partial evaluation reused
/// across every `surrogate` request with a matching key.
struct SurrogateSlot {
    key: Fingerprint,
    spec: SpecializedModel,
}

/// The concurrent, cache-backed evaluation engine.
pub struct EvalService {
    cache: ResultCache<EvalOutcome>,
    pool: WorkerPool,
    inflight: Mutex<std::collections::HashMap<u128, Arc<Inflight>>>,
    latencies_ms: Mutex<Vec<f64>>,
    search_totals: Mutex<SearchTotals>,
    whatif_totals: Mutex<WhatifTotals>,
    surrogate_totals: Mutex<SurrogateTotals>,
    surrogate_slot: Mutex<Option<SurrogateSlot>>,
    calibration: Option<Calibration>,
    disk: Option<DiskState>,
    include_timing: bool,
    max_line_len: usize,
}

impl EvalService {
    /// A memory-only service with the given sizing.
    ///
    /// # Panics
    ///
    /// Panics when `opts.cache_dir` is set — opening a durable store can
    /// fail, so that path must go through [`EvalService::open`].
    pub fn new(opts: ServeOptions) -> Arc<Self> {
        assert!(
            opts.cache_dir.is_none(),
            "EvalService::new is memory-only; use EvalService::open for cache_dir"
        );
        Self::open(opts).expect("in-memory service construction is infallible")
    }

    /// A service with the given sizing, warming the in-memory cache from
    /// `opts.cache_dir`'s log when one is configured.
    ///
    /// # Errors
    ///
    /// Fails when the cache log cannot be created/opened, or exists but is
    /// not a cache log (`cache/bad-magic`). A *damaged* log is not an
    /// error: the valid prefix is loaded and the torn tail truncated away.
    pub fn open(opts: ServeOptions) -> Result<Arc<Self>, UlmError> {
        let workers = opts.parallelism.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        });
        let queue = opts.queue_capacity.unwrap_or(2 * workers.max(1));
        let cache = ResultCache::new(opts.cache_capacity);
        let disk = match &opts.cache_dir {
            None => None,
            Some(dir) => {
                let (log, entries, replay) = CacheLog::open(&dir.join(CACHE_LOG_FILE))?;
                let mut warmed = 0usize;
                let mut decode_failures = 0u64;
                for (fp, payload) in entries {
                    match decode_outcome(&payload) {
                        Some(outcome) => {
                            cache.insert(Fingerprint(fp), outcome);
                            warmed += 1;
                        }
                        None => decode_failures += 1,
                    }
                }
                Some(DiskState {
                    log: Mutex::new(log),
                    warmed,
                    replay,
                    decode_failures,
                    appends: AtomicU64::new(0),
                    append_errors: AtomicU64::new(0),
                    compactions: AtomicU64::new(0),
                })
            }
        };
        Ok(Arc::new(EvalService {
            cache,
            pool: WorkerPool::new(workers, queue),
            inflight: Mutex::new(std::collections::HashMap::new()),
            latencies_ms: Mutex::new(Vec::new()),
            search_totals: Mutex::new(SearchTotals::default()),
            whatif_totals: Mutex::new(WhatifTotals::default()),
            surrogate_totals: Mutex::new(SurrogateTotals::default()),
            surrogate_slot: Mutex::new(None),
            calibration: opts.calibration.clone(),
            disk,
            include_timing: opts.include_timing,
            max_line_len: opts.max_line_len,
        }))
    }

    /// Counters for the durable store, `None` when memory-only.
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.disk.as_ref().map(|d| DiskStats {
            warmed: d.warmed,
            replayed_records: d.replay.records,
            recovered_from: d.replay.corruption.as_ref().map(|e| e.code().to_string()),
            decode_failures: d.decode_failures,
            appends: d.appends.load(Ordering::Relaxed),
            append_errors: d.append_errors.load(Ordering::Relaxed),
            compactions: d.compactions.load(Ordering::Relaxed),
        })
    }

    /// The configured request-line length bound in bytes.
    pub fn max_line_len(&self) -> usize {
        self.max_line_len
    }

    /// Appends a freshly computed result to the durable log (best-effort:
    /// an I/O failure is counted, not propagated — the in-memory result
    /// already answered the request) and compacts when enough appends have
    /// accumulated.
    fn persist(&self, fp: Fingerprint, outcome: &EvalOutcome) {
        let Some(disk) = &self.disk else { return };
        let payload = match serde_json::to_string(&outcome.to_value()) {
            Ok(json) => json,
            Err(_) => {
                disk.append_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let mut log = disk
            .log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match log.append(fp.0, payload.as_bytes()) {
            Ok(()) => {
                disk.appends.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                disk.append_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        if log.appended_since_compact() >= COMPACT_EVERY {
            let entries = encode_snapshot(&self.cache);
            if log.compact(&entries).is_ok() {
                disk.compactions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Forces a log compaction down to the current in-memory snapshot.
    /// No-op (returning `Ok`) when memory-only.
    pub fn compact_cache_log(&self) -> Result<(), UlmError> {
        let Some(disk) = &self.disk else {
            return Ok(());
        };
        let entries = encode_snapshot(&self.cache);
        let mut log = disk
            .log
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        log.compact(&entries)?;
        disk.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Cumulative search-effort counters over executed (non-cached)
    /// search requests.
    pub fn search_totals(&self) -> SearchTotals {
        *self
            .search_totals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Cumulative incremental-evaluation counters over `whatif` requests.
    pub fn whatif_totals(&self) -> WhatifTotals {
        *self
            .whatif_totals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Cumulative fast-path counters over `surrogate` requests.
    pub fn surrogate_totals(&self) -> SurrogateTotals {
        *self
            .surrogate_totals
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// The id of the calibration the service was opened with, if any.
    pub fn calibration_id(&self) -> Option<&str> {
        self.calibration.as_ref().map(|c| c.id.as_str())
    }

    /// The result cache (exposed for benchmarks and tests).
    pub fn cache(&self) -> &ResultCache<EvalOutcome> {
        &self.cache
    }

    /// Snapshot of cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot of pool counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Handles one raw NDJSON line synchronously on the calling thread.
    /// Returns `None` for blank lines.
    pub fn handle_line(&self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() {
            return None;
        }
        let (id, body) = match serde_json::from_str::<Value>(line) {
            Ok(req) => {
                let id = req.get("id").cloned().unwrap_or(Value::Null);
                (id.clone(), self.respond(&req))
            }
            Err(e) => (
                Value::Null,
                Err(UlmError::invalid_request(format!("invalid JSON: {e}"))),
            ),
        };
        let mut entries = vec![("id".to_string(), id)];
        match body {
            Ok(fields) => {
                entries.push(("ok".to_string(), Value::Bool(true)));
                entries.extend(fields);
            }
            Err(e) => {
                entries.push(("ok".to_string(), Value::Bool(false)));
                entries.push(("error".to_string(), Value::String(e.to_string())));
                // The stable machine-readable error code, `domain/kind`.
                entries.push(("code".to_string(), Value::String(e.code().to_string())));
            }
        }
        Some(serde_json::to_string(&Value::Object(entries)).expect("printing is infallible"))
    }

    /// Submits one line to the worker pool (blocking while the queue is
    /// full) and returns a handle to the eventual response.
    pub fn submit_line(self: &Arc<Self>, line: String) -> JobHandle<Option<String>> {
        let service = Arc::clone(self);
        self.pool.submit(move || service.handle_line(&line))
    }

    fn respond(&self, req: &Value) -> Result<Vec<(String, Value)>, UlmError> {
        match parse_request(req)? {
            Request::Stats => Ok(self.stats_fields()),
            Request::WhatIf { base, set } => {
                let start = Instant::now();
                let result = self.respond_whatif(&base, &set);
                let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                self.latencies_ms
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(elapsed_ms);
                let mut fields = result?;
                if self.include_timing {
                    fields.push(("elapsed_ms".to_string(), Value::F64(elapsed_ms)));
                }
                Ok(fields)
            }
            Request::Surrogate(query) => {
                let start = Instant::now();
                let result = self.respond_surrogate(&query);
                let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                self.latencies_ms
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(elapsed_ms);
                let mut fields = result?;
                if self.include_timing {
                    fields.push(("elapsed_ms".to_string(), Value::F64(elapsed_ms)));
                }
                Ok(fields)
            }
            Request::Net(query) => {
                let start = Instant::now();
                let result = query.execute();
                let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                self.latencies_ms
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(elapsed_ms);
                let mut fields = result?;
                if self.include_timing {
                    fields.push(("elapsed_ms".to_string(), Value::F64(elapsed_ms)));
                }
                Ok(fields)
            }
            Request::Query(query) => {
                let start = Instant::now();
                let fp = query.fingerprint();
                let result = self.lookup_or_execute(&query, fp);
                let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
                self.latencies_ms
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(elapsed_ms);
                let (outcome, cached) = result?;
                let mut fields = vec![
                    (
                        "kind".to_string(),
                        Value::String(
                            if outcome.search.is_some() {
                                "search"
                            } else {
                                "eval"
                            }
                            .into(),
                        ),
                    ),
                    ("fingerprint".to_string(), Value::String(fp.to_string())),
                    ("cached".to_string(), Value::Bool(cached)),
                    (
                        "mapping_text".to_string(),
                        Value::String(outcome.mapping.to_string()),
                    ),
                    ("mapping".to_string(), outcome.mapping.to_value()),
                    ("latency".to_string(), outcome.latency.to_value()),
                    ("energy".to_string(), outcome.energy.to_value()),
                    ("search".to_string(), outcome.search.to_value()),
                ];
                if self.include_timing {
                    fields.push(("elapsed_ms".to_string(), Value::F64(elapsed_ms)));
                }
                Ok(fields)
            }
        }
    }

    /// Resolves the base query against the fingerprinted cache (computing
    /// and caching it on a miss), applies the knob overrides, and
    /// re-evaluates the base's mapping on the modified architecture
    /// through the dirty-stage delta path — invalidated lowering stages
    /// are recomputed, everything else is reused. The delta evaluation is
    /// bit-identical to a cold evaluation of the modified design.
    fn respond_whatif(
        &self,
        base: &Query,
        set: &[String],
    ) -> Result<Vec<(String, Value)>, UlmError> {
        let fp = base.fingerprint();
        let (outcome, cached) = self.lookup_or_execute(base, fp)?;
        let (modified_arch, delta) = apply_overrides(&base.arch, set)?;

        let model = LatencyModel::with_options(base.model);
        let mut scratch = ModelScratch::default();
        // Prime the pipeline on the base design, then rebuild only what
        // the overrides invalidated. A pure-bandwidth override reuses the
        // residency and feed-rate stages (and the energy model's access
        // counts with them).
        let base_view = MappedLayer::new(&base.layer, &base.arch, &outcome.mapping)?;
        let (base_fast, _) = model.evaluate_delta_fast(&base_view, InputDelta::ALL, &mut scratch);
        let view = MappedLayer::new(&base.layer, &modified_arch, &outcome.mapping)?;
        let (fast, rebuild) = model.evaluate_delta_fast(&view, delta, &mut scratch);
        let energy = EnergyModel::new().evaluate_lowered(&view, scratch.lowered());

        {
            let mut totals = self
                .whatif_totals
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            totals.requests += 1;
            if cached {
                totals.delta_hits += 1;
            } else {
                totals.full_rebuilds += 1;
            }
        }

        let summary = |cc_total: f64, ss_overall: f64, utilization: f64, energy_fj: f64| {
            Value::Object(vec![
                ("cc_total".to_string(), Value::F64(cc_total)),
                ("ss_overall".to_string(), Value::F64(ss_overall)),
                ("utilization".to_string(), Value::F64(utilization)),
                ("energy_fj".to_string(), Value::F64(energy_fj)),
            ])
        };
        Ok(vec![
            ("kind".to_string(), Value::String("whatif".into())),
            ("fingerprint".to_string(), Value::String(fp.to_string())),
            ("cached".to_string(), Value::Bool(cached)),
            (
                "set".to_string(),
                Value::Array(set.iter().map(|s| Value::String(s.clone())).collect()),
            ),
            (
                "mapping_text".to_string(),
                Value::String(outcome.mapping.to_string()),
            ),
            ("mapping".to_string(), outcome.mapping.to_value()),
            (
                "base".to_string(),
                summary(
                    base_fast.cc_total,
                    base_fast.ss_overall,
                    base_fast.utilization,
                    outcome.energy.total_fj,
                ),
            ),
            (
                "modified".to_string(),
                summary(
                    fast.cc_total,
                    fast.ss_overall,
                    fast.utilization,
                    energy.total_fj,
                ),
            ),
            (
                "delta".to_string(),
                Value::Object(vec![
                    (
                        "cc_total".to_string(),
                        Value::F64(fast.cc_total - base_fast.cc_total),
                    ),
                    (
                        "energy_fj".to_string(),
                        Value::F64(energy.total_fj - outcome.energy.total_fj),
                    ),
                    (
                        "speedup".to_string(),
                        Value::F64(base_fast.cc_total / fast.cc_total),
                    ),
                ]),
            ),
            (
                "rebuild".to_string(),
                Value::Object(vec![
                    (
                        "stages_rebuilt".to_string(),
                        Value::U64(u64::from(rebuild.stages_rebuilt)),
                    ),
                    (
                        "stages_skipped".to_string(),
                        Value::U64(u64::from(rebuild.stages_skipped)),
                    ),
                ]),
            ),
        ])
    }

    /// Answers a `surrogate` request. When the service's cached
    /// specialization matches the request's slot key (and `reuse` allows
    /// it), the query runs the closed-form kernel directly — no mapping
    /// search, no lowering. Otherwise the template layer's best mapping
    /// is searched once, the model is partially evaluated for the
    /// resulting `(arch, shape)`, and the specialization is cached for
    /// the next request. A service calibration matching the request's
    /// architecture is applied first; its id enters the fingerprint.
    fn respond_surrogate(&self, q: &SurrogateQuery) -> Result<Vec<(String, Value)>, UlmError> {
        let (arch, calibration_id) = match &self.calibration {
            Some(cal) if cal.arch == q.arch.name() => {
                let (applied, _) = cal.apply(&q.arch)?;
                (applied, Some(cal.id.clone()))
            }
            _ => (q.arch.clone(), None),
        };
        let key = q.slot_key(calibration_id.as_deref());
        let fp = q.fingerprint(calibration_id.as_deref());
        let (b, k, c) = (
            q.layer.shape().dim(Dim::B),
            q.layer.shape().dim(Dim::K),
            q.layer.shape().dim(Dim::C),
        );

        let specialize = || -> Result<SpecializedModel, UlmError> {
            let (tb, tk, tc) = q.template;
            let mut template = q.layer.clone();
            template.set_matmul_dims(tb, tk, tc);
            let best = Mapper::new(&arch, &template, q.spatial.clone())
                .with_options(q.mapper)
                .search(Objective::Latency)?;
            let shape = MappingShape::from_mapping(&best.best.mapping)?;
            Ok(SpecializedModel::prepare(
                LatencyModel::with_options(q.model),
                &arch,
                &template,
                shape,
            )?)
        };

        let (fast, shape_text, hit) = if q.reuse {
            let mut slot = self
                .surrogate_slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let hit = matches!(&*slot, Some(s) if s.key == key);
            if !hit {
                *slot = Some(SurrogateSlot {
                    key,
                    spec: specialize()?,
                });
            }
            let s = slot.as_mut().expect("slot was just filled");
            let fast = s.spec.query(b, k, c)?;
            (fast, s.spec.shape().to_string(), hit)
        } else {
            // `reuse:false` sidesteps the shared slot entirely: always
            // specialize fresh and leave the cached specialization alone.
            let mut spec = specialize()?;
            let fast = spec.query(b, k, c)?;
            (fast, spec.shape().to_string(), false)
        };

        {
            let mut totals = self
                .surrogate_totals
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            totals.requests += 1;
            if hit {
                totals.hits += 1;
            } else {
                totals.misses += 1;
            }
        }

        let mut fields = vec![
            ("kind".to_string(), Value::String("surrogate".into())),
            ("fingerprint".to_string(), Value::String(fp.to_string())),
            ("specialized_reused".to_string(), Value::Bool(hit)),
            ("shape".to_string(), Value::String(shape_text)),
            ("layer".to_string(), Value::String(format!("{b}x{k}x{c}"))),
            (
                "latency".to_string(),
                Value::Object(vec![
                    ("cc_total".to_string(), Value::F64(fast.cc_total)),
                    ("cc_ideal".to_string(), Value::F64(fast.cc_ideal)),
                    ("cc_spatial".to_string(), Value::U64(fast.cc_spatial)),
                    ("ss_overall".to_string(), Value::F64(fast.ss_overall)),
                    ("preload".to_string(), Value::U64(fast.preload)),
                    ("offload".to_string(), Value::U64(fast.offload)),
                    ("utilization".to_string(), Value::F64(fast.utilization)),
                ]),
            ),
        ];
        if let Some(id) = calibration_id {
            fields.push(("calibration_id".to_string(), Value::String(id)));
        }
        Ok(fields)
    }

    /// Cache lookup with single-flight coalescing: concurrent identical
    /// queries are computed once — the first thread executes, the others
    /// block on the in-flight marker and then read the cached result.
    fn lookup_or_execute(
        &self,
        query: &Query,
        fp: Fingerprint,
    ) -> Result<(EvalOutcome, bool), UlmError> {
        loop {
            if let Some(hit) = self.cache.get(fp) {
                return Ok((hit, true));
            }
            enum Role {
                Leader(Arc<Inflight>),
                Follower(Arc<Inflight>),
            }
            let role = {
                let mut map = self
                    .inflight
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                match map.get(&fp.0) {
                    Some(slot) => Role::Follower(Arc::clone(slot)),
                    None => {
                        let slot = Arc::new(Inflight {
                            done: Mutex::new(false),
                            cv: std::sync::Condvar::new(),
                        });
                        map.insert(fp.0, Arc::clone(&slot));
                        Role::Leader(slot)
                    }
                }
            };
            match role {
                Role::Leader(slot) => {
                    let result = query.execute();
                    if let Ok(out) = &result {
                        if let Some(meta) = &out.search {
                            let mut totals = self
                                .search_totals
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            totals.searches += 1;
                            totals.stats.absorb(&meta.stats);
                        }
                        self.cache.insert(fp, out.clone());
                        self.persist(fp, out);
                    }
                    self.inflight
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .remove(&fp.0);
                    *slot
                        .done
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = true;
                    slot.cv.notify_all();
                    return result.map(|out| (out, false));
                }
                Role::Follower(slot) => {
                    let mut done = slot
                        .done
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    while !*done {
                        done = slot
                            .cv
                            .wait(done)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    // Loop around: a successful leader filled the cache
                    // (hit); a failed leader left it empty and this thread
                    // becomes the next leader, reproducing the error.
                }
            }
        }
    }

    fn stats_fields(&self) -> Vec<(String, Value)> {
        let cache = self.cache.stats();
        let pool = self.pool.stats();
        let latency = {
            let samples = self
                .latencies_ms
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            LatencySummary::from_samples(&samples)
        };
        let mut cache_value = match cache.to_value() {
            Value::Object(entries) => entries,
            _ => Vec::new(),
        };
        cache_value.push(("hit_rate".to_string(), Value::F64(cache.hit_rate())));
        let mut fields = vec![
            ("kind".to_string(), Value::String("stats".into())),
            ("cache".to_string(), Value::Object(cache_value)),
            ("pool".to_string(), pool.to_value()),
            ("latency_ms".to_string(), latency.to_value()),
            ("search".to_string(), self.search_totals().to_value()),
            ("whatif".to_string(), self.whatif_totals().to_value()),
            ("surrogate".to_string(), self.surrogate_totals().to_value()),
            (
                "calibration_id".to_string(),
                match self.calibration_id() {
                    Some(id) => Value::String(id.to_string()),
                    None => Value::Null,
                },
            ),
        ];
        if let Some(disk) = self.disk_stats() {
            fields.push(("disk".to_string(), disk.to_value()));
        }
        fields
    }
}

// ---------------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------------

/// One step of bounded line reading from a `BufRead`.
enum BoundedLine {
    /// A complete line within the bound.
    Line(String),
    /// A line over the bound was dropped (resync handled internally).
    Oversized,
    /// Input exhausted.
    Eof,
}

/// Reads the next newline-terminated line from `input`, enforcing
/// `max_len` via the same framing state machine the reactor uses. A
/// trailing unterminated line at EOF still comes out as a line.
fn read_bounded_line<R: BufRead>(
    input: &mut R,
    buf: &mut Vec<u8>,
    discarding: &mut bool,
    max_len: usize,
) -> std::io::Result<BoundedLine> {
    loop {
        match extract_line(buf, discarding, max_len) {
            Extracted::Line(line) => return Ok(BoundedLine::Line(line)),
            Extracted::Oversized => return Ok(BoundedLine::Oversized),
            Extracted::Incomplete => {
                let chunk = input.fill_buf()?;
                if chunk.is_empty() {
                    if buf.is_empty() || *discarding {
                        return Ok(BoundedLine::Eof);
                    }
                    // Terminate the final partial line so it parses.
                    buf.push(b'\n');
                    continue;
                }
                let n = chunk.len();
                buf.extend_from_slice(chunk);
                input.consume(n);
            }
        }
    }
}

/// Totals from one [`run_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchSummary {
    /// Non-blank lines processed.
    pub requests: usize,
    /// Responses with `"ok":false`.
    pub errors: usize,
}

/// Streams NDJSON requests from `input` to `output` through the service's
/// worker pool. Responses are written in input order; concurrency comes
/// from pipelining, bounded by the pool's queue (backpressure) and a small
/// in-flight window.
///
/// # Errors
///
/// Propagates I/O errors from reading `input` or writing `output`.
pub fn run_batch<R: BufRead, W: Write>(
    service: &Arc<EvalService>,
    mut input: R,
    output: &mut W,
) -> std::io::Result<BatchSummary> {
    let mut summary = BatchSummary::default();
    let window = 2 * service.pool.worker_count() + 4;
    let mut pending: VecDeque<JobHandle<Option<String>>> = VecDeque::new();

    let flush_one = |pending: &mut VecDeque<JobHandle<Option<String>>>,
                     output: &mut W,
                     summary: &mut BatchSummary|
     -> std::io::Result<()> {
        if let Some(handle) = pending.pop_front() {
            if let Some(response) = handle.wait() {
                summary.requests += 1;
                if response.contains("\"ok\":false") {
                    summary.errors += 1;
                }
                output.write_all(response.as_bytes())?;
                output.write_all(b"\n")?;
            }
        }
        Ok(())
    };

    let mut buf = Vec::new();
    let mut discarding = false;
    loop {
        let limit = service.max_line_len;
        match read_bounded_line(&mut input, &mut buf, &mut discarding, limit)? {
            BoundedLine::Eof => break,
            BoundedLine::Oversized => {
                // Answered in order like any other request, through the
                // pool so the pipeline's ordering invariant holds.
                let response = error_response(&UlmError::TooLarge { limit });
                pending.push_back(service.pool.submit(move || Some(response)));
            }
            BoundedLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                pending.push_back(service.submit_line(line));
            }
        }
        while pending.len() >= window {
            flush_one(&mut pending, output, &mut summary)?;
        }
        // Opportunistically drain already-finished fronts to keep latency
        // low without blocking the reader.
        while pending.front().is_some_and(JobHandle::is_ready) {
            flush_one(&mut pending, output, &mut summary)?;
        }
    }
    while !pending.is_empty() {
        flush_one(&mut pending, output, &mut summary)?;
    }
    output.flush()?;
    Ok(summary)
}

/// True for `accept` failures that condemn one connection attempt, not
/// the listener: aborted handshakes, and resource exhaustion (`EMFILE`,
/// `ENFILE`, `ENOBUFS`, `ENOMEM`) that draining existing connections will
/// relieve.
fn is_transient_accept_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::Interrupted
            | std::io::ErrorKind::WouldBlock
    ) || matches!(e.raw_os_error(), Some(23 | 24 | 12 | 105 | 71))
}

/// How long the accept loop sleeps after a transient failure before
/// retrying, giving existing connections time to release descriptors.
const ACCEPT_BACKOFF: std::time::Duration = std::time::Duration::from_millis(100);

fn serve_connection(service: &Arc<EvalService>, stream: &std::net::TcpStream) {
    let mut reader = BufReader::new(stream);
    let mut writer = stream;
    let mut buf = Vec::new();
    let mut discarding = false;
    let limit = service.max_line_len;
    loop {
        let response = match read_bounded_line(&mut reader, &mut buf, &mut discarding, limit) {
            Err(_) | Ok(BoundedLine::Eof) => break,
            Ok(BoundedLine::Oversized) => error_response(&UlmError::TooLarge { limit }),
            Ok(BoundedLine::Line(line)) => match service.submit_line(line).wait() {
                Some(response) => response,
                None => continue, // blank line
            },
        };
        if writer.write_all(response.as_bytes()).is_err()
            || writer.write_all(b"\n").is_err()
            || writer.flush().is_err()
        {
            break;
        }
    }
}

/// Serves NDJSON over TCP: one connection per client thread, one response
/// line per request line, until the client closes. `max_connections` bounds
/// how many connections are accepted before returning (`None` = serve
/// forever); malformed requests produce error responses, not disconnects.
///
/// Transient `accept` failures (aborted handshakes, descriptor
/// exhaustion) are logged and retried after a short backoff instead of
/// killing the server; request lines beyond the service's length bound are
/// answered with `request/too-large` and discarded.
///
/// # Errors
///
/// Propagates non-transient `accept` failures. Per-connection I/O errors
/// terminate only that connection.
pub fn run_tcp(
    service: &Arc<EvalService>,
    listener: TcpListener,
    max_connections: Option<usize>,
) -> std::io::Result<()> {
    std::thread::scope(|scope| {
        let mut accepted = 0usize;
        loop {
            if let Some(limit) = max_connections {
                if accepted >= limit {
                    break;
                }
            }
            let stream = match listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(e) if is_transient_accept_error(&e) => {
                    eprintln!("ulm serve: transient accept failure ({e}); retrying");
                    std::thread::sleep(ACCEPT_BACKOFF);
                    continue;
                }
                Err(e) => return Err(e),
            };
            accepted += 1;
            let service = Arc::clone(service);
            scope.spawn(move || serve_connection(&service, &stream));
        }
        Ok(())
    })
}

// ---------------------------------------------------------------------------
// The event-driven transport
// ---------------------------------------------------------------------------

/// Adapter letting the epoll reactor drive the evaluation engine: request
/// lines are dispatched to the worker pool and answered through the
/// completion channel, never blocking the event-loop thread (the reactor
/// keeps in-flight submissions below [`WorkerPool::queue_capacity`], the
/// point where [`WorkerPool::submit`] would block).
pub struct ReactorService(Arc<EvalService>);

impl ReactorService {
    /// Wraps a service for [`ulm_reactor::Reactor::run`].
    pub fn new(service: Arc<EvalService>) -> Self {
        ReactorService(service)
    }
}

impl ulm_reactor::LineService for ReactorService {
    fn submit(&self, line: String, done: ulm_reactor::Completion) {
        let service = Arc::clone(&self.0);
        // The handle is dropped: the response travels through `done`.
        let _ = self
            .0
            .pool
            .submit(move || done.send(service.handle_line(&line)));
    }

    fn oversized(&self, limit: usize) -> Option<String> {
        Some(error_response(&UlmError::TooLarge { limit }))
    }

    fn over_capacity(&self, active: usize) -> Option<String> {
        Some(error_response(&UlmError::OverCapacity { active }))
    }

    fn capacity_hint(&self) -> usize {
        self.0.pool.queue_capacity()
    }
}

/// Serves NDJSON over TCP on the single-threaded epoll reactor: one event
/// loop multiplexes every connection while evaluations run on the
/// service's worker pool. The reactor's line-length bound is overridden by
/// the service's own, so both transports enforce the same limit.
///
/// Returns the run summary once the reactor shuts down (via
/// `opts.shutdown_on_stdin_close` or a `ShutdownHandle` taken from a
/// directly constructed [`ulm_reactor::Reactor`]).
///
/// # Errors
///
/// Fails with `reactor/unsupported` off Linux and `reactor/io` for
/// event-loop-level failures.
pub fn run_reactor(
    service: &Arc<EvalService>,
    listener: TcpListener,
    mut opts: ulm_reactor::ReactorOptions,
) -> Result<ulm_reactor::ReactorSummary, UlmError> {
    opts.max_line_len = service.max_line_len;
    let reactor = ulm_reactor::Reactor::new(listener, opts)?;
    Ok(reactor.run(&ReactorService::new(Arc::clone(service)))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Arc<EvalService> {
        EvalService::new(ServeOptions {
            parallelism: Some(2),
            cache_capacity: 64,
            ..ServeOptions::default()
        })
    }

    fn parse(response: &str) -> Value {
        serde_json::from_str(response).expect("responses are valid JSON")
    }

    #[test]
    fn search_then_eval_round_trip() {
        let svc = service();
        let search = svc
            .handle_line(
                r#"{"kind":"search","id":1,"arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":200,"samples":20}}"#,
            )
            .unwrap();
        let v = parse(&search);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{search}");
        assert_eq!(v.get("id"), Some(&Value::U64(1)));
        assert!(v.get("latency").and_then(|l| l.get("cc_total")).is_some());

        // Feed the returned mapping back as an explicit eval.
        let mapping = serde_json::to_string(v.get("mapping").unwrap()).unwrap();
        let eval_line =
            format!(r#"{{"kind":"eval","id":2,"arch":"toy","layer":"4x4x8","mapping":{mapping}}}"#);
        let eval = svc.handle_line(&eval_line).unwrap();
        let ev = parse(&eval);
        assert_eq!(ev.get("ok"), Some(&Value::Bool(true)), "{eval}");
        // Same mapping, same model: identical latency.
        assert_eq!(
            ev.get("latency").and_then(|l| l.get("cc_total")),
            v.get("latency").and_then(|l| l.get("cc_total"))
        );
    }

    #[test]
    fn identical_searches_hit_the_cache() {
        let svc = service();
        let line = r#"{"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#;
        let first = parse(&svc.handle_line(line).unwrap());
        let second = parse(&svc.handle_line(line).unwrap());
        assert_eq!(first.get("cached"), Some(&Value::Bool(false)));
        assert_eq!(second.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(first.get("fingerprint"), second.get("fingerprint"));
        // Bit-identical result payloads.
        assert_eq!(first.get("latency"), second.get("latency"));
        assert_eq!(first.get("energy"), second.get("energy"));
        assert!(svc.cache_stats().hits >= 1);
    }

    #[test]
    fn malformed_lines_yield_error_objects() {
        let svc = service();
        for bad in [
            "{not json",
            r#"{"kind":"explode"}"#,
            r#"{"kind":"eval","arch":"toy","layer":"4x4x8"}"#,
            r#"{"kind":"search","arch":"nope","layer":"4x4x8"}"#,
            r#"{"kind":"search","arch":"toy"}"#,
            r#"[1,2,3]"#,
            // Zero sizes must become error responses, not worker panics.
            r#"{"kind":"search","arch":"toy","layer":"0x4x8"}"#,
            r#"{"kind":"search","arch":"toy","layer":{"b":4,"k":0,"c":8}}"#,
            r#"{"kind":"search","arch":"toy","layer":"4x4x8","spatial":[["K",0]]}"#,
        ] {
            let resp = svc.handle_line(bad).unwrap();
            let v = parse(&resp);
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{bad} -> {resp}");
            assert!(v.get("error").is_some());
        }
        // Blank lines are skipped outright.
        assert_eq!(svc.handle_line("   "), None);
    }

    #[test]
    fn error_responses_carry_stable_codes() {
        let svc = service();
        for (bad, code) in [
            ("{not json", "request/invalid"),
            (r#"{"kind":"explode"}"#, "request/invalid"),
            (
                r#"{"kind":"search","arch":"nope","layer":"4x4x8"}"#,
                "request/invalid",
            ),
            // A well-formed request whose search finds no legal mapping
            // surfaces the typed domain error, not a stringly one.
            (
                r#"{"kind":"search","arch":"toy","layer":"4x4x8","spatial":[["K",1024]]}"#,
                "mapper/no-legal-mapping",
            ),
        ] {
            let v = parse(&svc.handle_line(bad).unwrap());
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{bad}");
            assert_eq!(
                v.get("code"),
                Some(&Value::String(code.to_string())),
                "{bad}"
            );
        }
    }

    #[test]
    fn net_attention_decode_round_trips_with_fusion_aware_fingerprint() {
        let svc = service();
        let base = r#"{"kind":"net","id":7,"arch":"toy","net":"attention-decode","mapper":{"max_exhaustive":200,"samples":20}}"#;
        let fused = r#"{"kind":"net","id":8,"arch":"toy","net":"attention-decode","mapper":{"max_exhaustive":200,"samples":20},"fuse":[{"layers":["logit","attend"],"pin":"LB"}]}"#;
        let b = parse(&svc.handle_line(base).unwrap());
        let f = parse(&svc.handle_line(fused).unwrap());
        assert_eq!(b.get("ok"), Some(&Value::Bool(true)), "{b:?}");
        assert_eq!(f.get("ok"), Some(&Value::Bool(true)), "{f:?}");
        // The `fuse` field enters the fingerprint: same network, distinct
        // identities.
        assert_ne!(b.get("fingerprint"), f.get("fingerprint"));
        // The fused run reports its residency table…
        assert_eq!(
            f.get("segments").map(|s| match s {
                Value::Array(items) => items.len(),
                _ => 0,
            }),
            Some(1)
        );
        // …and pinning at the toy chip's backing store elides nothing, so
        // the totals are the layer-by-layer oracle's, exactly.
        assert_eq!(b.get("total_cycles"), f.get("total_cycles"));
        assert_eq!(b.get("total_fj"), f.get("total_fj"));
    }

    #[test]
    fn net_fusion_errors_carry_fuse_codes() {
        let svc = service();
        let bad = r#"{"kind":"net","arch":"toy","net":"attention-decode","fuse":[{"layers":["logit","nope"],"pin":"LB"}]}"#;
        let v = parse(&svc.handle_line(bad).unwrap());
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{v:?}");
        assert_eq!(
            v.get("code"),
            Some(&Value::String("fuse/unknown-layer".to_string()))
        );
    }

    #[test]
    fn whatif_matches_cold_evaluation_of_modified_arch() {
        let svc = service();
        let base = r#"{"kind":"search","arch":"case16","gb_bw":128,"layer":"8x16x64","mapper":{"max_exhaustive":200,"samples":20}}"#;
        let b = parse(&svc.handle_line(base).unwrap());
        assert_eq!(b.get("ok"), Some(&Value::Bool(true)), "{b:?}");

        // Same base fields + overrides: the cached entry is the base.
        let whatif = parse(&svc.handle_line(
            r#"{"kind":"whatif","arch":"case16","gb_bw":128,"layer":"8x16x64","mapper":{"max_exhaustive":200,"samples":20},"set":["mem.GB.bw=2x"]}"#,
        ).unwrap());
        assert_eq!(whatif.get("ok"), Some(&Value::Bool(true)), "{whatif:?}");
        assert_eq!(whatif.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(whatif.get("fingerprint"), b.get("fingerprint"));
        // The base half of the response is the cached result.
        assert_eq!(
            whatif.get("base").and_then(|v| v.get("cc_total")),
            b.get("latency").and_then(|l| l.get("cc_total"))
        );
        // A bandwidth-only override reuses the residency and feed-rate
        // stages.
        let rebuild = whatif.get("rebuild").unwrap();
        assert_eq!(
            rebuild.get("stages_skipped").and_then(Value::as_u64),
            Some(2),
            "{whatif:?}"
        );

        // Cold re-evaluation of the incumbent mapping on the modified
        // architecture (`case16` at twice the GB bandwidth) must agree
        // bit for bit.
        let mapping = serde_json::to_string(b.get("mapping").unwrap()).unwrap();
        let cold_line = format!(
            r#"{{"kind":"eval","arch":"case16","gb_bw":256,"layer":"8x16x64","mapping":{mapping}}}"#
        );
        let cold = parse(&svc.handle_line(&cold_line).unwrap());
        assert_eq!(cold.get("ok"), Some(&Value::Bool(true)), "{cold:?}");
        assert_eq!(
            whatif.get("modified").and_then(|v| v.get("cc_total")),
            cold.get("latency").and_then(|l| l.get("cc_total"))
        );
        assert_eq!(
            whatif.get("modified").and_then(|v| v.get("energy_fj")),
            cold.get("energy").and_then(|e| e.get("total_fj"))
        );

        // Counters: one whatif, served off the cached base.
        let totals = svc.whatif_totals();
        assert_eq!(totals.requests, 1);
        assert_eq!(totals.delta_hits, 1);
        assert_eq!(totals.full_rebuilds, 0);

        // A whatif whose base is not cached computes it from scratch and
        // shows up as a full rebuild (and caches the base for next time).
        let fresh = parse(&svc.handle_line(
            r#"{"kind":"whatif","arch":"case16","gb_bw":128,"layer":"16x16x64","mapper":{"max_exhaustive":200,"samples":20},"set":["mem.GB.bw=2x"]}"#,
        ).unwrap());
        assert_eq!(fresh.get("ok"), Some(&Value::Bool(true)), "{fresh:?}");
        assert_eq!(fresh.get("cached"), Some(&Value::Bool(false)));
        let totals = svc.whatif_totals();
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.delta_hits, 1);
        assert_eq!(totals.full_rebuilds, 1);

        // `/stats` surfaces the same counters.
        let stats = parse(&svc.handle_line(r#"{"kind":"stats"}"#).unwrap());
        let w = stats.get("whatif").unwrap();
        assert_eq!(w.get("requests").and_then(Value::as_u64), Some(2));
        assert_eq!(w.get("delta_hits").and_then(Value::as_u64), Some(1));
        assert_eq!(w.get("full_rebuilds").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn whatif_knob_errors_carry_stable_codes() {
        let svc = service();
        for (bad, code) in [
            (
                r#"{"kind":"whatif","arch":"toy","layer":"4x4x8","set":["mem.NOPE.bw=2x"]}"#,
                "knob/unknown-memory",
            ),
            (
                r#"{"kind":"whatif","arch":"toy","layer":"4x4x8","set":["gb.bw=2x"]}"#,
                "knob/unknown-path",
            ),
            (
                r#"{"kind":"whatif","arch":"toy","layer":"4x4x8","set":["mem.LB.bw=fast"]}"#,
                "knob/bad-value",
            ),
            (
                r#"{"kind":"whatif","arch":"toy","layer":"4x4x8","set":["mem.LB.bw=0x"]}"#,
                "knob/invalid-value",
            ),
            // Malformed `set` shapes stay request-level errors.
            (
                r#"{"kind":"whatif","arch":"toy","layer":"4x4x8","set":[]}"#,
                "request/invalid",
            ),
            (
                r#"{"kind":"whatif","arch":"toy","layer":"4x4x8"}"#,
                "request/invalid",
            ),
        ] {
            let v = parse(&svc.handle_line(bad).unwrap());
            assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{bad}");
            assert_eq!(
                v.get("code"),
                Some(&Value::String(code.to_string())),
                "{bad}"
            );
        }
    }

    #[test]
    fn surrogate_slot_reuse_counts_hits_and_misses() {
        let svc = service();
        let first = r#"{"kind":"surrogate","arch":"case16","layer":"64x96x640","mapper":{"max_exhaustive":200,"samples":20}}"#;
        let sweep = r#"{"kind":"surrogate","arch":"case16","layer":"128x96x640","template":"64x96x640","mapper":{"max_exhaustive":200,"samples":20}}"#;
        let a = parse(&svc.handle_line(first).unwrap());
        assert_eq!(a.get("ok"), Some(&Value::Bool(true)), "{a:?}");
        assert_eq!(a.get("specialized_reused"), Some(&Value::Bool(false)));
        // The first request's default template (its own dims) matches the
        // sweep request's explicit template, so the slot is reused even
        // though the query layers differ.
        let b = parse(&svc.handle_line(sweep).unwrap());
        assert_eq!(b.get("ok"), Some(&Value::Bool(true)), "{b:?}");
        assert_eq!(b.get("specialized_reused"), Some(&Value::Bool(true)));
        // Distinct layers keep distinct result identities.
        assert_ne!(a.get("fingerprint"), b.get("fingerprint"));
        assert_eq!(
            svc.surrogate_totals(),
            SurrogateTotals {
                requests: 2,
                hits: 1,
                misses: 1
            }
        );
        // `/stats` surfaces the counters and the (absent) calibration id.
        let stats = parse(&svc.handle_line(r#"{"kind":"stats"}"#).unwrap());
        let sur = stats.get("surrogate").expect("stats carry surrogate");
        assert_eq!(sur.get("hits"), Some(&Value::U64(1)));
        assert_eq!(sur.get("misses"), Some(&Value::U64(1)));
        assert_eq!(stats.get("calibration_id"), Some(&Value::Null));
    }

    #[test]
    fn surrogate_reuse_flag_is_excluded_from_the_fingerprint() {
        let svc = service();
        let shared = r#"{"kind":"surrogate","arch":"case16","layer":"64x96x640","mapper":{"max_exhaustive":200,"samples":20}}"#;
        let fresh = r#"{"kind":"surrogate","arch":"case16","layer":"64x96x640","reuse":false,"mapper":{"max_exhaustive":200,"samples":20}}"#;
        let a = parse(&svc.handle_line(shared).unwrap());
        let b = parse(&svc.handle_line(fresh).unwrap());
        assert_eq!(a.get("ok"), Some(&Value::Bool(true)), "{a:?}");
        assert_eq!(b.get("ok"), Some(&Value::Bool(true)), "{b:?}");
        // `reuse` is a replay knob, not an input: identical identity and
        // bit-identical results either way.
        assert_eq!(a.get("fingerprint"), b.get("fingerprint"));
        assert_eq!(a.get("latency"), b.get("latency"));
        assert_eq!(b.get("specialized_reused"), Some(&Value::Bool(false)));
    }

    #[test]
    fn calibrated_service_stamps_calibration_id() {
        let cal = ulm_model::Calibration {
            arch: "case-study-16x16".into(),
            id: "cal-test".into(),
            ports: Vec::new(),
        };
        let svc = EvalService::new(ServeOptions {
            calibration: Some(cal),
            ..ServeOptions::default()
        });
        let line = r#"{"kind":"surrogate","arch":"case16","layer":"8x16x64","mapper":{"max_exhaustive":200,"samples":20}}"#;
        let v = parse(&svc.handle_line(line).unwrap());
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)), "{v:?}");
        assert_eq!(
            v.get("calibration_id"),
            Some(&Value::String("cal-test".into()))
        );
        // A different architecture ignores the case16 calibration.
        let other = r#"{"kind":"surrogate","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#;
        let w = parse(&svc.handle_line(other).unwrap());
        assert_eq!(w.get("ok"), Some(&Value::Bool(true)), "{w:?}");
        assert_eq!(w.get("calibration_id"), None);
        // `/stats` reports the loaded calibration.
        let stats = parse(&svc.handle_line(r#"{"kind":"stats"}"#).unwrap());
        assert_eq!(
            stats.get("calibration_id"),
            Some(&Value::String("cal-test".into()))
        );
    }

    #[test]
    fn stats_report_cache_and_pool() {
        let svc = service();
        let line = r#"{"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#;
        svc.handle_line(line).unwrap();
        svc.handle_line(line).unwrap();
        let stats = parse(&svc.handle_line(r#"{"kind":"stats"}"#).unwrap());
        assert_eq!(stats.get("ok"), Some(&Value::Bool(true)));
        let cache = stats.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(1));
        assert!(cache.get("hit_rate").and_then(Value::as_f64).unwrap() > 0.0);
        let latency = stats.get("latency_ms").unwrap();
        assert_eq!(latency.get("count").and_then(Value::as_u64), Some(2));
        assert!(
            latency.get("max_ms").and_then(Value::as_f64).unwrap()
                >= latency.get("min_ms").and_then(Value::as_f64).unwrap()
        );
        assert!(stats.get("pool").unwrap().get("workers").is_some());
        // `/stats` alias.
        let alias = parse(&svc.handle_line(r#"{"kind":"/stats"}"#).unwrap());
        assert_eq!(alias.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parallelism_is_excluded_from_the_fingerprint() {
        // Searches differing only in `mapper.parallelism` return the same
        // result, so they must share a cache entry.
        let svc = service();
        let serial = parse(&svc.handle_line(
            r#"{"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#,
        ).unwrap());
        let threaded = parse(&svc.handle_line(
            r#"{"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10,"parallelism":4}}"#,
        ).unwrap());
        assert_eq!(serial.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(serial.get("fingerprint"), threaded.get("fingerprint"));
        assert_eq!(threaded.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(serial.get("latency"), threaded.get("latency"));
    }

    #[test]
    fn batch_lanes_is_excluded_from_the_fingerprint() {
        // The batched SoA kernel is bit-identical to the scalar path, so
        // requests differing only in `mapper.batch_lanes` share a cache
        // entry.
        let svc = service();
        let scalar = parse(&svc.handle_line(
            r#"{"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10,"batch_lanes":1}}"#,
        ).unwrap());
        let batched = parse(&svc.handle_line(
            r#"{"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10,"batch_lanes":8}}"#,
        ).unwrap());
        assert_eq!(scalar.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(scalar.get("fingerprint"), batched.get("fingerprint"));
        assert_eq!(batched.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(scalar.get("latency"), batched.get("latency"));
    }

    #[test]
    fn stats_report_cumulative_search_totals() {
        let svc = service();
        let line = r#"{"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#;
        let first = parse(&svc.handle_line(line).unwrap());
        svc.handle_line(line).unwrap(); // cached: must not re-accumulate
        let stats = parse(&svc.handle_line(r#"{"kind":"stats"}"#).unwrap());
        let search = stats.get("search").unwrap();
        assert_eq!(search.get("searches").and_then(Value::as_u64), Some(1));
        let totals = search.get("stats").unwrap();
        let meta = first.get("search").unwrap().get("stats").unwrap();
        for key in [
            "generated",
            "evaluated",
            "pruned",
            "cache_hits",
            "batch_lanes",
        ] {
            assert_eq!(
                totals.get(key).and_then(Value::as_u64),
                meta.get(key).and_then(Value::as_u64),
                "{key}"
            );
        }
        assert!(meta.get("batch_lanes").and_then(Value::as_u64).unwrap() >= 1);
    }

    #[test]
    fn concurrent_identical_queries_compute_once() {
        let svc = EvalService::new(ServeOptions {
            parallelism: Some(4),
            cache_capacity: 64,
            ..ServeOptions::default()
        });
        let line = r#"{"kind":"search","arch":"toy","layer":"4x8x8","mapper":{"max_exhaustive":200,"samples":20}}"#;
        let handles: Vec<_> = (0..8).map(|_| svc.submit_line(line.to_string())).collect();
        let responses: Vec<Value> = handles
            .into_iter()
            .map(|h| parse(&h.wait().unwrap()))
            .collect();
        // Single-flight: exactly one thread computed, everyone else was
        // served from the cache, with identical payloads.
        let fresh = responses
            .iter()
            .filter(|r| r.get("cached") == Some(&Value::Bool(false)))
            .count();
        assert_eq!(fresh, 1, "exactly one leader may compute");
        assert_eq!(svc.cache_stats().insertions, 1);
        for r in &responses {
            assert_eq!(r.get("ok"), Some(&Value::Bool(true)));
            assert_eq!(r.get("latency"), responses[0].get("latency"));
        }
    }

    #[test]
    fn batch_preserves_input_order() {
        let svc = service();
        let mut input = String::new();
        for i in 0..12 {
            let bkc = ["4x4x8", "4x8x8", "8x4x8"][i % 3];
            input.push_str(&format!(
                "{{\"id\":{i},\"kind\":\"search\",\"arch\":\"toy\",\"layer\":\"{bkc}\",\"mapper\":{{\"max_exhaustive\":100,\"samples\":10}}}}\n"
            ));
        }
        input.push_str("{\"id\":99,\"kind\":\"stats\"}\n");
        let mut out = Vec::new();
        let summary = run_batch(&svc, input.as_bytes(), &mut out).unwrap();
        assert_eq!(summary.requests, 13);
        assert_eq!(summary.errors, 0);
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
        assert_eq!(lines.len(), 13);
        for (i, line) in lines.iter().take(12).enumerate() {
            let v = parse(line);
            assert_eq!(
                v.get("id").and_then(Value::as_u64),
                Some(i as u64),
                "{line}"
            );
        }
        // Repeated layers must have hit the cache (9 distinct → 3 uniques).
        assert!(svc.cache_stats().hits >= 9 - 3);
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;

        let svc = service();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let svc2 = Arc::clone(&svc);
        let server = std::thread::spawn(move || run_tcp(&svc2, listener, Some(1)));

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(
                b"{\"id\":7,\"kind\":\"search\",\"arch\":\"toy\",\"layer\":\"4x4x8\",\"mapper\":{\"max_exhaustive\":100,\"samples\":10}}\nnot json\n",
            )
            .unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let reader = BufReader::new(&stream);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        assert_eq!(lines.len(), 2);
        let first = parse(&lines[0]);
        assert_eq!(first.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(first.get("ok"), Some(&Value::Bool(true)));
        let second = parse(&lines[1]);
        assert_eq!(second.get("ok"), Some(&Value::Bool(false)));
        server.join().unwrap().unwrap();
    }
}
