//! Content-addressed fingerprints for evaluation queries.
//!
//! A [`Fingerprint`] is a 128-bit FNV-1a hash over a *canonical* byte
//! encoding of a serialized value tree: every node is fed to the hash with a
//! type tag, integers in fixed-width little-endian form, and object entries
//! sorted by key. Two queries that serialize to the same logical value — the
//! same architecture, layer, spatial unrolling, temporal mapping (or search
//! objective) and model options — therefore hash to the same fingerprint
//! regardless of how their structs were built, which makes the fingerprint
//! usable as a memoization key for the result cache.

use serde::{Serialize, Value};
use std::fmt;

/// A 128-bit content hash of an evaluation query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }

    /// Parses the `Display` form (32 lowercase hex digits).
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(Fingerprint)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Incremental FNV-1a-128 hasher.
#[derive(Debug, Clone)]
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    fn new() -> Self {
        Fnv128 { state: FNV_OFFSET }
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

fn hash_value(h: &mut Fnv128, v: &Value) {
    match v {
        Value::Null => h.update(b"n"),
        Value::Bool(b) => h.update(if *b { b"b1" } else { b"b0" }),
        Value::U64(n) => {
            h.update(b"u");
            h.update(&n.to_le_bytes());
        }
        Value::I64(n) => {
            // Non-negative integers hash identically whether they arrived
            // as U64 or I64 (JSON does not distinguish the two).
            if *n >= 0 {
                h.update(b"u");
                h.update(&(*n as u64).to_le_bytes());
            } else {
                h.update(b"i");
                h.update(&n.to_le_bytes());
            }
        }
        Value::F64(f) => {
            // Integral floats hash like integers for the same reason.
            if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 {
                h.update(b"u");
                h.update(&(*f as u64).to_le_bytes());
            } else if f.fract() == 0.0 && *f < 0.0 && *f >= i64::MIN as f64 {
                h.update(b"i");
                h.update(&(*f as i64).to_le_bytes());
            } else {
                h.update(b"f");
                h.update(&f.to_bits().to_le_bytes());
            }
        }
        Value::String(s) => {
            h.update(b"s");
            h.update(&(s.len() as u64).to_le_bytes());
            h.update(s.as_bytes());
        }
        Value::Array(items) => {
            h.update(b"a");
            h.update(&(items.len() as u64).to_le_bytes());
            for item in items {
                hash_value(h, item);
            }
        }
        Value::Object(entries) => {
            // Sort by key so field order never affects the fingerprint.
            let mut refs: Vec<&(String, Value)> = entries.iter().collect();
            refs.sort_by(|a, b| a.0.cmp(&b.0));
            h.update(b"o");
            h.update(&(refs.len() as u64).to_le_bytes());
            for (k, val) in refs {
                h.update(&(k.len() as u64).to_le_bytes());
                h.update(k.as_bytes());
                hash_value(h, val);
            }
        }
    }
}

/// Fingerprints an already-serialized value tree.
pub fn fingerprint_value(v: &Value) -> Fingerprint {
    let mut h = Fnv128::new();
    hash_value(&mut h, v);
    Fingerprint(h.finish())
}

/// Fingerprints any serializable value.
pub fn fingerprint_of<T: Serialize>(value: &T) -> Fingerprint {
    fingerprint_value(&value.to_value())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips() {
        let fp = fingerprint_of(&("abc", 7u64));
        let shown = fp.to_string();
        assert_eq!(shown.len(), 32);
        assert_eq!(Fingerprint::from_hex(&shown), Some(fp));
        assert_eq!(Fingerprint::from_hex("xyz"), None);
    }

    #[test]
    fn object_key_order_is_canonical() {
        let a = Value::Object(vec![
            ("x".into(), Value::U64(1)),
            ("y".into(), Value::U64(2)),
        ]);
        let b = Value::Object(vec![
            ("y".into(), Value::U64(2)),
            ("x".into(), Value::U64(1)),
        ]);
        assert_eq!(fingerprint_value(&a), fingerprint_value(&b));
    }

    #[test]
    fn numeric_forms_unify() {
        // 8 as U64, I64 and F64 must hash identically: JSON round trips can
        // produce any of the three for the same document.
        assert_eq!(
            fingerprint_value(&Value::U64(8)),
            fingerprint_value(&Value::I64(8))
        );
        assert_eq!(
            fingerprint_value(&Value::U64(8)),
            fingerprint_value(&Value::F64(8.0))
        );
        assert_ne!(
            fingerprint_value(&Value::F64(8.5)),
            fingerprint_value(&Value::U64(8))
        );
    }

    #[test]
    fn structure_is_not_trivially_collidable() {
        // Same leaf bytes, different shapes.
        let flat = Value::Array(vec![Value::U64(1), Value::U64(2)]);
        let nested = Value::Array(vec![Value::Array(vec![Value::U64(1), Value::U64(2)])]);
        assert_ne!(fingerprint_value(&flat), fingerprint_value(&nested));
        // String "1" vs integer 1.
        assert_ne!(
            fingerprint_value(&Value::String("1".into())),
            fingerprint_value(&Value::U64(1))
        );
        // Key/value boundary shifts.
        let a = Value::Object(vec![("ab".into(), Value::String("c".into()))]);
        let b = Value::Object(vec![("a".into(), Value::String("bc".into()))]);
        assert_ne!(fingerprint_value(&a), fingerprint_value(&b));
    }
}
