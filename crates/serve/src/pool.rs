//! Bounded worker pool on plain `std::thread` + `Mutex`/`Condvar`.
//!
//! [`WorkerPool::submit`] enqueues a closure onto a bounded MPMC queue and
//! returns a [`JobHandle`] that resolves to the closure's return value.
//! When the queue is full, `submit` **blocks** — backpressure propagates to
//! producers instead of queueing unboundedly. Dropping the pool performs a
//! graceful shutdown: already-queued jobs still run, then workers exit and
//! are joined.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    in_flight: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
}

/// Pool counters, as reported by `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PoolStats {
    /// Worker threads.
    pub workers: usize,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Jobs currently executing on a worker.
    pub in_flight: usize,
    /// Jobs ever submitted.
    pub submitted: u64,
    /// Jobs that finished executing.
    pub completed: u64,
}

/// The result slot a submitted job fills in.
struct Slot<T> {
    value: Mutex<Option<T>>,
    done: Condvar,
}

/// Handle to one submitted job; resolves to the closure's return value.
pub struct JobHandle<T> {
    slot: Arc<Slot<T>>,
}

impl<T> JobHandle<T> {
    /// Blocks until the job completes and takes its result.
    ///
    /// # Panics
    ///
    /// Panics if called twice (the result has already been taken) or if the
    /// job itself panicked on a worker.
    pub fn wait(self) -> T {
        let mut guard = self
            .slot
            .value
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(v) = guard.take() {
                return v;
            }
            if Arc::strong_count(&self.slot) == 1 {
                // The worker side was dropped without storing a value: the
                // job panicked.
                panic!("worker pool job panicked before producing a result");
            }
            let (g, _timeout) = self
                .slot
                .done
                .wait_timeout(guard, std::time::Duration::from_millis(50))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            guard = g;
        }
    }

    /// True once the result is available (non-blocking).
    pub fn is_ready(&self) -> bool {
        self.slot
            .value
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
    }
}

/// A fixed-size pool of worker threads draining a bounded job queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool with `threads` workers and room for `queue_capacity` queued
    /// jobs (both clamped to at least 1).
    pub fn new(threads: usize, queue_capacity: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: queue_capacity.max(1),
            in_flight: AtomicUsize::new(0),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ulm-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// A pool sized to the machine: `available_parallelism` workers and a
    /// queue twice as deep.
    pub fn with_default_size() -> Self {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        Self::new(n, 2 * n)
    }

    /// Enqueues a job, blocking while the queue is at capacity.
    pub fn submit<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot = Arc::new(Slot {
            value: Mutex::new(None),
            done: Condvar::new(),
        });
        let worker_slot = Arc::clone(&slot);
        let shared = Arc::clone(&self.shared);
        let job: Job = Box::new(move || {
            let out = f();
            // Count completion *before* publishing the value: a waiter that
            // observes the result must also observe the counter increment,
            // so `stats()` right after `wait()` never under-reports.
            shared.completed.fetch_add(1, Ordering::Relaxed);
            *worker_slot
                .value
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
            worker_slot.done.notify_all();
        });

        let mut queue = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while queue.jobs.len() >= self.shared.capacity {
            queue = self
                .shared
                .not_full
                .wait(queue)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        queue.jobs.push_back(job);
        self.shared.submitted.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        self.shared.not_empty.notify_one();
        JobHandle { slot }
    }

    /// Jobs waiting in the queue (not yet started).
    pub fn queue_depth(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .jobs
            .len()
    }

    /// Worker-thread count.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Queued-job capacity: how many submissions fit before
    /// [`submit`](WorkerPool::submit) blocks.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers.len(),
            queue_depth: self.queue_depth(),
            in_flight: self.shared.in_flight.load(Ordering::Relaxed),
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        for worker in self.workers.drain(..) {
            // Graceful: workers drain remaining queued jobs before exiting.
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared
                    .not_empty
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        shared.not_full.notify_one();
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        job();
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    #[test]
    fn results_come_back_in_any_order() {
        let pool = WorkerPool::new(4, 8);
        let handles: Vec<_> = (0..20u64).map(|i| pool.submit(move || i * i)).collect();
        let results: Vec<u64> = handles.into_iter().map(JobHandle::wait).collect();
        assert_eq!(results, (0..20u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_blocks_submit() {
        let pool = WorkerPool::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        // Occupy the single worker until the gate opens.
        let g = Arc::clone(&gate);
        let blocker = pool.submit(move || {
            let (lock, cv) = &*g;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
        });
        // Fill the 1-slot queue.
        let queued = pool.submit(|| 1u64);
        // A further submit must block until the worker frees a slot; do it
        // from another thread and verify it has not finished early.
        let pool = Arc::new(pool);
        let p = Arc::clone(&pool);
        let t = std::thread::spawn(move || p.submit(|| 2u64).wait());
        std::thread::sleep(Duration::from_millis(50));
        assert!(!t.is_finished(), "submit should block while queue is full");
        assert_eq!(pool.queue_depth(), 1);
        // Open the gate; everything drains.
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        blocker.wait();
        assert_eq!(queued.wait(), 1);
        assert_eq!(t.join().unwrap(), 2);
    }

    #[test]
    fn drop_runs_queued_jobs_to_completion() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = WorkerPool::new(2, 64);
            for _ in 0..50 {
                let c = Arc::clone(&counter);
                // Handles intentionally dropped: jobs must still run.
                let _ = pool.submit(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        } // Drop joins workers after the queue drains.
        assert_eq!(counter.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn stats_track_submission_lifecycle() {
        let pool = WorkerPool::new(2, 16);
        let handles: Vec<_> = (0..10u64).map(|i| pool.submit(move || i)).collect();
        for h in handles {
            h.wait();
        }
        let s = pool.stats();
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.workers, 2);
        assert_eq!(s.queue_depth, 0);
    }

    #[test]
    fn is_ready_flips_after_completion() {
        let pool = WorkerPool::new(1, 4);
        let h = pool.submit(|| 5u64);
        // Wait (bounded) for readiness.
        for _ in 0..200 {
            if h.is_ready() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(h.is_ready());
        assert_eq!(h.wait(), 5);
    }
}
