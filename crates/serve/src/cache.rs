//! Sharded, bounded, content-addressed result cache.
//!
//! Maps a [`Fingerprint`] to a cached
//! evaluation result. The key space is split across independent
//! `RwLock`-guarded shards so concurrent workers rarely contend; reads take
//! the shard's read lock (recency stamps are atomics, so hits never upgrade
//! to a write lock). Each shard is bounded and evicts its least-recently-used
//! entry on overflow. Hit/miss/insert/evict counters feed the `/stats`
//! protocol endpoint.

use crate::fingerprint::Fingerprint;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

const SHARDS: usize = 16;

struct Entry<V> {
    value: V,
    /// Last-touch tick from the cache-wide clock; highest = most recent.
    stamp: AtomicU64,
}

/// Aggregate cache counters, as reported by `/stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum resident entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over total lookups, 0.0 when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded LRU-ish memoization cache keyed by fingerprint.
pub struct ResultCache<V> {
    shards: Vec<RwLock<HashMap<u128, Entry<V>>>>,
    per_shard_capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl<V: Clone> ResultCache<V> {
    /// A cache holding at most `capacity` entries (rounded up to a multiple
    /// of the shard count; a zero capacity disables storage but still
    /// counts lookups).
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = capacity.div_ceil(SHARDS);
        ResultCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            per_shard_capacity,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: Fingerprint) -> &RwLock<HashMap<u128, Entry<V>>> {
        // Low bits of an FNV hash mix well; SHARDS is a power of two.
        &self.shards[(fp.0 as usize) & (SHARDS - 1)]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up a fingerprint, refreshing its recency on a hit.
    pub fn get(&self, fp: Fingerprint) -> Option<V> {
        let shard = self
            .shard(fp)
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match shard.get(&fp.0) {
            Some(entry) => {
                entry.stamp.store(self.tick(), Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a value, evicting the shard's least-recently-used entry when
    /// the shard is full.
    pub fn insert(&self, fp: Fingerprint, value: V) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self
            .shard(fp)
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if shard.len() >= self.per_shard_capacity && !shard.contains_key(&fp.0) {
            if let Some(oldest) = shard
                .iter()
                .min_by_key(|(_, e)| e.stamp.load(Ordering::Relaxed))
                .map(|(k, _)| *k)
            {
                shard.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.insert(
            fp.0,
            Entry {
                value,
                stamp: AtomicU64::new(self.tick()),
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
    }

    /// Cache-through evaluation: returns `(value, was_hit)`, computing and
    /// storing on a miss. Concurrent misses on the same key may compute
    /// twice; both arrive at the same value, so the duplicate insert is
    /// harmless.
    pub fn get_or_compute<F: FnOnce() -> V>(&self, fp: Fingerprint, compute: F) -> (V, bool) {
        if let Some(v) = self.get(fp) {
            return (v, true);
        }
        let v = compute();
        self.insert(fp, v.clone());
        (v, false)
    }

    /// A point-in-time copy of every resident entry, ordered by key so
    /// compaction and export produce deterministic files. Shards are locked
    /// one at a time, so concurrent inserts may or may not appear.
    pub fn snapshot(&self) -> Vec<(u128, V)> {
        let mut out: Vec<(u128, V)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            out.extend(shard.iter().map(|(k, e)| (*k, e.value.clone())));
        }
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
            capacity: self.per_shard_capacity * SHARDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n)
    }

    #[test]
    fn hit_miss_counters() {
        let cache: ResultCache<u64> = ResultCache::new(64);
        assert_eq!(cache.get(fp(1)), None);
        cache.insert(fp(1), 10);
        assert_eq!(cache.get(fp(1)), Some(10));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn get_or_compute_memoizes() {
        let cache: ResultCache<u64> = ResultCache::new(64);
        let mut calls = 0;
        let (v, hit) = cache.get_or_compute(fp(7), || {
            calls += 1;
            42
        });
        assert_eq!((v, hit, calls), (42, false, 1));
        let (v, hit) = cache.get_or_compute(fp(7), || {
            calls += 1;
            42
        });
        assert_eq!((v, hit, calls), (42, true, 1));
    }

    #[test]
    fn eviction_is_lru_within_shard() {
        // Keys 0, 16, 32, … land in shard 0 (low 4 bits select the shard).
        let cache: ResultCache<u64> = ResultCache::new(2 * 16);
        cache.insert(fp(0), 0);
        cache.insert(fp(16), 1);
        // Touch key 0 so key 16 becomes the oldest.
        assert_eq!(cache.get(fp(0)), Some(0));
        cache.insert(fp(32), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(fp(0)), Some(0), "recently used entry survives");
        assert_eq!(cache.get(fp(16)), None, "LRU entry was evicted");
        assert_eq!(cache.get(fp(32)), Some(2));
    }

    #[test]
    fn capacity_is_bounded() {
        let cache: ResultCache<u64> = ResultCache::new(32);
        for i in 0..1000u128 {
            cache.insert(fp(i), i as u64);
        }
        assert!(cache.len() <= 32);
        assert!(cache.stats().evictions >= 1000 - 32);
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache: ResultCache<u64> = ResultCache::new(0);
        cache.insert(fp(1), 1);
        assert_eq!(cache.get(fp(1)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_access_is_consistent() {
        use std::sync::Arc;
        let cache: Arc<ResultCache<u64>> = Arc::new(ResultCache::new(256));
        let mut handles = Vec::new();
        for t in 0..8u128 {
            let c = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..200u128 {
                    let key = fp(t * 1000 + i);
                    c.insert(key, i as u64);
                    assert!(matches!(c.get(key), Some(_) | None));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.insertions, 1600);
        assert!(s.entries <= 256);
    }
}
