//! Integration tests for the durable result log: restart warm-up through
//! [`EvalService::open`], recovery from torn and bit-flipped logs, and
//! property tests for the record codec.

use proptest::collection;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use ulm_serve::store::{encode_record, replay, MAGIC};
use ulm_serve::{EvalService, ServeOptions, CACHE_LOG_FILE};

/// A small search request that exercises the full evaluate-and-persist path.
const SEARCH: &str = r#"{"id":1,"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#;

/// A fresh scratch directory per test (std-only; no tempfile crate).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ulm-cache-log-{}-{tag}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn opts(dir: &Path) -> ServeOptions {
    ServeOptions {
        parallelism: Some(1),
        cache_capacity: 64,
        cache_dir: Some(dir.to_path_buf()),
        include_timing: false,
        ..ServeOptions::default()
    }
}

/// Responses modulo the `cached` marker, for byte-identity checks between
/// a fresh evaluation and a warmed-from-disk answer.
fn without_cached_marker(response: &str) -> String {
    response
        .replace("\"cached\":true", "")
        .replace("\"cached\":false", "")
}

#[test]
fn restart_answers_previously_seen_fingerprints_from_the_warmed_cache() {
    let dir = scratch("restart");
    let first = EvalService::open(opts(&dir)).unwrap();
    let fresh = first.handle_line(SEARCH).unwrap();
    assert!(fresh.contains("\"cached\":false"), "{fresh}");
    assert_eq!(first.disk_stats().unwrap().appends, 1);
    drop(first);

    // A brand-new process image: nothing in memory, everything on disk.
    let second = EvalService::open(opts(&dir)).unwrap();
    let disk = second.disk_stats().unwrap();
    assert_eq!(disk.warmed, 1);
    assert_eq!(disk.replayed_records, 1);
    assert_eq!(disk.recovered_from, None);

    let warmed = second.handle_line(SEARCH).unwrap();
    assert!(warmed.contains("\"cached\":true"), "{warmed}");
    // The hit counters prove no re-evaluation happened, and with timing
    // disabled the payloads must agree byte for byte.
    let stats = second.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 0));
    assert_eq!(
        without_cached_marker(&fresh),
        without_cached_marker(&warmed)
    );
    // Answering from the warm cache is not a new result; nothing appends.
    assert_eq!(second.disk_stats().unwrap().appends, 0);
}

#[test]
fn torn_final_record_warms_the_prefix_and_heals_on_reopen() {
    let dir = scratch("torn");
    let other: String = SEARCH.replace("4x4x8", "4x8x8");
    let svc = EvalService::open(opts(&dir)).unwrap();
    svc.handle_line(SEARCH).unwrap();
    svc.handle_line(&other).unwrap();
    assert_eq!(svc.disk_stats().unwrap().appends, 2);
    drop(svc);

    // Tear bytes off the final record, as a crash mid-append would.
    let path = dir.join(CACHE_LOG_FILE);
    let len = std::fs::metadata(&path).unwrap().len();
    std::fs::OpenOptions::new()
        .write(true)
        .open(&path)
        .unwrap()
        .set_len(len - 3)
        .unwrap();

    let svc = EvalService::open(opts(&dir)).unwrap();
    let disk = svc.disk_stats().unwrap();
    assert_eq!(disk.warmed, 1);
    assert_eq!(disk.recovered_from.as_deref(), Some("cache/truncated"));
    // The surviving entry still answers from cache; the torn one must be
    // re-evaluated (and re-appended onto the now-trusted prefix).
    assert!(svc.handle_line(SEARCH).unwrap().contains("\"cached\":true"));
    assert!(svc
        .handle_line(&other)
        .unwrap()
        .contains("\"cached\":false"));
    drop(svc);

    // Truncate-on-open dropped the damaged tail, so the next restart sees
    // a clean log holding both entries again.
    let healed = EvalService::open(opts(&dir)).unwrap();
    let disk = healed.disk_stats().unwrap();
    assert_eq!(disk.warmed, 2);
    assert_eq!(disk.recovered_from, None);
}

#[test]
fn bad_checksum_in_the_tail_warms_only_trusted_records() {
    let dir = scratch("flip");
    let other: String = SEARCH.replace("4x4x8", "8x4x8");
    let svc = EvalService::open(opts(&dir)).unwrap();
    svc.handle_line(SEARCH).unwrap();
    svc.handle_line(&other).unwrap();
    drop(svc);

    // Flip one payload bit inside the final record.
    let path = dir.join(CACHE_LOG_FILE);
    let mut bytes = std::fs::read(&path).unwrap();
    let tail = bytes.len() - 4;
    bytes[tail] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let svc = EvalService::open(opts(&dir)).unwrap();
    let disk = svc.disk_stats().unwrap();
    assert_eq!(disk.warmed, 1);
    assert_eq!(disk.recovered_from.as_deref(), Some("cache/bad-checksum"));
}

#[test]
fn a_file_that_is_not_a_cache_log_is_refused_outright() {
    let dir = scratch("magic");
    std::fs::write(dir.join(CACHE_LOG_FILE), b"definitely not a log").unwrap();
    let err = match EvalService::open(opts(&dir)) {
        Err(e) => e,
        Ok(_) => panic!("a non-log file must not open as a cache log"),
    };
    assert_eq!(err.code(), "cache/bad-magic");
}

#[test]
fn checksum_valid_but_undecodable_payloads_are_skipped_not_fatal() {
    let dir = scratch("decode");
    let mut bytes = MAGIC.to_vec();
    bytes.extend_from_slice(&encode_record(42, b"not an outcome"));
    std::fs::write(dir.join(CACHE_LOG_FILE), &bytes).unwrap();

    let svc = EvalService::open(opts(&dir)).unwrap();
    let disk = svc.disk_stats().unwrap();
    assert_eq!(disk.replayed_records, 1);
    assert_eq!(disk.warmed, 0);
    assert_eq!(disk.decode_failures, 1);
}

/// Strategy for `(fingerprint, payload)` entries: fingerprints from two
/// full-domain u64 halves, payloads as short arbitrary byte strings.
fn entry_strategy() -> impl Strategy<Value = Vec<(u64, u64, Vec<u8>)>> {
    collection::vec(
        (
            any::<u64>(),
            any::<u64>(),
            collection::vec(any::<u8>(), 0..48),
        ),
        0..12,
    )
}

fn encode_stream(entries: &[(u128, Vec<u8>)]) -> Vec<u8> {
    let mut bytes = MAGIC.to_vec();
    for (fp, payload) in entries {
        bytes.extend_from_slice(&encode_record(*fp, payload));
    }
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → replay round-trips every entry, with last-write-wins
    /// semantics per fingerprint and fingerprint-sorted output.
    #[test]
    fn record_streams_round_trip(raw in entry_strategy()) {
        let entries: Vec<(u128, Vec<u8>)> = raw
            .into_iter()
            .map(|(hi, lo, payload)| ((u128::from(hi) << 64) | u128::from(lo), payload))
            .collect();
        let bytes = encode_stream(&entries);
        let (got, report) = replay(&bytes).unwrap();
        prop_assert_eq!(report.records, entries.len() as u64);
        prop_assert_eq!(report.valid_bytes, bytes.len() as u64);
        prop_assert!(report.corruption.is_none());

        let mut expect: std::collections::BTreeMap<u128, Vec<u8>> =
            std::collections::BTreeMap::new();
        for (fp, payload) in entries {
            expect.insert(fp, payload);
        }
        prop_assert_eq!(got, expect.into_iter().collect::<Vec<_>>());
    }

    /// Cutting the stream anywhere never panics and never errors (the magic
    /// survives): replay recovers a valid prefix whose re-encoding replays
    /// to the same entries (recovery is idempotent).
    #[test]
    fn truncation_anywhere_recovers_a_replayable_prefix(
        raw in entry_strategy(),
        cut_ppm in 0u64..=1_000_000,
    ) {
        let entries: Vec<(u128, Vec<u8>)> = raw
            .into_iter()
            .map(|(hi, lo, payload)| ((u128::from(hi) << 64) | u128::from(lo), payload))
            .collect();
        let bytes = encode_stream(&entries);
        let body = bytes.len() - MAGIC.len();
        let cut = MAGIC.len() + (body as u64 * cut_ppm / 1_000_000) as usize;

        let (got, report) = replay(&bytes[..cut]).unwrap();
        prop_assert!(report.valid_bytes as usize <= cut);
        prop_assert!(report.records <= entries.len() as u64);
        if cut == bytes.len() {
            prop_assert!(report.corruption.is_none());
        }
        let (again, clean) = replay(&encode_stream(&got)).unwrap();
        prop_assert!(clean.corruption.is_none());
        prop_assert_eq!(again, got);
    }
}
