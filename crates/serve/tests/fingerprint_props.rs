//! Property tests for the content-addressed fingerprint and the cached
//! evaluation path.

use proptest::prelude::*;
use serde::{Serialize, Value};
use std::sync::Arc;
use ulm_arch::presets;
use ulm_mapping::SpatialUnroll;
use ulm_serve::{fingerprint_of, fingerprint_value, EvalService, ServeOptions};
use ulm_workload::{Layer, Precision};

fn layer(b: u64, k: u64, c: u64) -> Layer {
    Layer::matmul(format!("({b},{k},{c})"), b, k, c, Precision::int8_out24())
}

proptest! {
    /// Building the same logical query twice yields the same fingerprint:
    /// the hash depends only on content, never on construction order or
    /// allocation identity.
    #[test]
    fn equal_inputs_have_equal_fingerprints(
        b in 1u64..64,
        k in 1u64..64,
        c in 1u64..64,
    ) {
        let chip = presets::toy_chip();
        let first = (
            chip.arch.clone(),
            SpatialUnroll::new(chip.spatial.clone()),
            layer(b, k, c),
        );
        let chip2 = presets::toy_chip();
        let second = (
            chip2.arch.clone(),
            SpatialUnroll::new(chip2.spatial.clone()),
            layer(b, k, c),
        );
        prop_assert_eq!(fingerprint_of(&first), fingerprint_of(&second));
    }

    /// Object key order never matters: a permuted field order hashes the
    /// same, which is what makes JSON round trips fingerprint-stable.
    #[test]
    fn key_order_is_irrelevant(
        a in 0u64..1000,
        b in 0u64..1000,
        c in 0u64..1000,
    ) {
        let forward = Value::Object(vec![
            ("alpha".to_string(), Value::U64(a)),
            ("beta".to_string(), Value::U64(b)),
            ("gamma".to_string(), Value::U64(c)),
        ]);
        let reversed = Value::Object(vec![
            ("gamma".to_string(), Value::U64(c)),
            ("beta".to_string(), Value::U64(b)),
            ("alpha".to_string(), Value::U64(a)),
        ]);
        prop_assert_eq!(fingerprint_value(&forward), fingerprint_value(&reversed));
    }

    /// Distinct layer shapes must not collide: a collision here would make
    /// the cache silently answer one layer's query with another's result.
    #[test]
    fn distinct_layers_do_not_collide(
        b1 in 1u64..64, k1 in 1u64..64, c1 in 1u64..64,
        b2 in 1u64..64, k2 in 1u64..64, c2 in 1u64..64,
    ) {
        if (b1, k1, c1) != (b2, k2, c2) {
            prop_assert_ne!(
                fingerprint_of(&layer(b1, k1, c1)),
                fingerprint_of(&layer(b2, k2, c2))
            );
        }
    }

    /// A JSON round trip of the serialized query preserves the
    /// fingerprint: printing and re-parsing may change U64/I64/F64 forms
    /// but never the hash.
    #[test]
    fn json_round_trip_preserves_fingerprint(
        b in 1u64..64,
        k in 1u64..64,
        c in 1u64..64,
    ) {
        let l = layer(b, k, c);
        let direct = l.to_value();
        let text = serde_json::to_string(&direct).unwrap();
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(fingerprint_value(&direct), fingerprint_value(&reparsed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The cached answer is bit-identical to the freshly computed one: the
    /// second identical request must return the exact same result payload
    /// with `cached: true`.
    #[test]
    fn cached_evaluate_is_bit_identical(
        b in 1u64..16,
        k in 1u64..16,
        c in 1u64..16,
    ) {
        let svc = EvalService::new(ServeOptions {
            parallelism: Some(1),
            cache_capacity: 64,
            queue_capacity: None,
            ..ServeOptions::default()
        });
        let line = format!(
            "{{\"kind\":\"search\",\"arch\":\"toy\",\"layer\":\"{b}x{k}x{c}\",\
             \"mapper\":{{\"max_exhaustive\":60,\"samples\":8}}}}"
        );
        let strip = |resp: String| -> Value {
            let mut v: Value = serde_json::from_str(&resp).unwrap();
            // Timing varies between runs; everything else must not.
            if let Value::Object(entries) = &mut v {
                entries.retain(|(key, _)| key != "elapsed_ms" && key != "cached");
            }
            v
        };
        let uncached = svc.handle_line(&line).unwrap();
        prop_assert!(uncached.contains("\"cached\":false"), "{}", uncached);
        let cached = svc.handle_line(&line).unwrap();
        prop_assert!(cached.contains("\"cached\":true") || cached.contains("\"ok\":false"),
            "{}", cached);
        prop_assert_eq!(strip(uncached), strip(cached));
        let _ = Arc::strong_count(&svc);
    }
}
