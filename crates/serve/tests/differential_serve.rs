//! Differential test: the thread-per-connection transport and the epoll
//! reactor transport are two implementations of the *same* protocol, so an
//! identical batch of requests must produce byte-identical NDJSON responses
//! (order-normalized by request id; timing fields disabled).
//!
//! The threaded path doubles as the oracle here — it is the older, simpler
//! implementation the reactor must agree with.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use ulm_reactor::{Reactor, ReactorOptions};
use ulm_serve::{run_tcp, EvalService, ReactorService, ServeOptions};

const MAX_LINE: usize = 4096;

fn service() -> Arc<EvalService> {
    EvalService::new(ServeOptions {
        parallelism: Some(2),
        cache_capacity: 256,
        include_timing: false,
        max_line_len: MAX_LINE,
        ..ServeOptions::default()
    })
}

/// The shared request batch: searches (one repeated under a new id, which
/// must hit the cache identically on both paths), a protocol error, a parse
/// error, a blank line, and an oversized line.
fn requests() -> Vec<String> {
    vec![
        r#"{"id":1,"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#.into(),
        r#"{"id":2,"kind":"search","arch":"toy","layer":"8x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#.into(),
        r#"{"id":3,"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#.into(),
        r#"{"id":4,"kind":"frobnicate"}"#.into(),
        "this is not json".into(),
        String::new(),
        "x".repeat(MAX_LINE + 1),
    ]
}

/// Writes every request line, half-closes, and reads responses until EOF.
fn exchange(addr: std::net::SocketAddr, lines: &[String]) -> Vec<String> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    for line in lines {
        stream.write_all(line.as_bytes()).expect("write request");
        stream.write_all(b"\n").expect("write newline");
    }
    stream.shutdown(Shutdown::Write).expect("half-close");
    BufReader::new(stream)
        .lines()
        .map(|l| l.expect("read response"))
        .collect()
}

/// Order-normalization per the protocol: sort by request id, with id-less
/// (null) responses after, tie-broken by content. Per-connection order is
/// already deterministic on both paths, so this is belt and braces.
fn normalize(mut responses: Vec<String>) -> Vec<String> {
    fn id_of(line: &str) -> u64 {
        line.split_once("\"id\":")
            .and_then(|(_, rest)| {
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                digits.parse().ok()
            })
            .unwrap_or(u64::MAX)
    }
    responses.sort_by(|a, b| id_of(a).cmp(&id_of(b)).then_with(|| a.cmp(b)));
    responses
}

fn run_threaded(lines: &[String]) -> Vec<String> {
    let svc = service();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local addr");
    let join = thread::spawn(move || run_tcp(&svc, listener, Some(1)).expect("threaded serve"));
    let responses = exchange(addr, lines);
    join.join()
        .expect("threaded path exits after its one connection");
    responses
}

fn run_reactor_path(lines: &[String]) -> (Vec<String>, ulm_reactor::ReactorSummary) {
    let svc = service();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let reactor = Reactor::new(
        listener,
        ReactorOptions {
            max_line_len: svc.max_line_len(),
            ..ReactorOptions::default()
        },
    )
    .expect("reactor setup");
    let addr = reactor.local_addr().expect("local addr");
    let handle = reactor.shutdown_handle();
    let adapter = ReactorService::new(Arc::clone(&svc));
    let join = thread::spawn(move || reactor.run(&adapter).expect("reactor run"));
    let responses = exchange(addr, lines);
    handle.shutdown();
    let summary = join.join().expect("reactor thread");
    (responses, summary)
}

#[test]
fn reactor_and_threaded_paths_are_byte_identical() {
    let lines = requests();
    let threaded = run_threaded(&lines);
    let (reactor, summary) = run_reactor_path(&lines);

    // 5 answerable requests (3 searches, 1 bad kind, 1 parse error) plus
    // the oversized rejection; the blank line produces nothing.
    assert_eq!(threaded.len(), 6, "{threaded:#?}");
    assert_eq!(normalize(threaded), normalize(reactor));

    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.oversized_lines, 1);
    // 6 submitted lines (the blank one included), 5 of which answer; the
    // oversized rejection is written but never reaches the service.
    assert_eq!(summary.requests, 6);
    assert_eq!(summary.responses, 5);
    assert!(summary.drained_cleanly);
}

#[test]
fn pipelined_bursts_agree_across_transports() {
    // A single burst mixing fresh and repeat queries stresses ordering:
    // every response must come back in request order on both paths.
    let mut lines = Vec::new();
    for (i, (b, k, c)) in [
        (4u64, 4u64, 8u64),
        (8, 4, 8),
        (4, 8, 8),
        (4, 4, 8),
        (8, 4, 8),
    ]
    .iter()
    .enumerate()
    {
        lines.push(format!(
            r#"{{"id":{},"kind":"search","arch":"toy","layer":"{b}x{k}x{c}","mapper":{{"max_exhaustive":60,"samples":8}}}}"#,
            i + 10
        ));
    }
    let threaded = run_threaded(&lines);
    let (reactor, summary) = run_reactor_path(&lines);
    assert_eq!(threaded.len(), lines.len());
    assert_eq!(
        threaded, reactor,
        "responses must match in order, not just as sets"
    );
    assert_eq!(summary.requests, lines.len() as u64);

    // The repeats must be served from cache on both paths.
    for repeat in &threaded[3..] {
        assert!(repeat.contains("\"cached\":true"), "{repeat}");
    }
}
