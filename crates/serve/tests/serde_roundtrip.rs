//! JSON round trips of every type that enters a fingerprint.
//!
//! The content-addressed cache is only sound if serialization is
//! deterministic (hash-stable field ordering) and lossless: serializing,
//! printing, parsing and deserializing a query's building blocks must give
//! back an equal value with an identical fingerprint.

use serde::{Deserialize, Serialize, Value};
use ulm_arch::presets;
use ulm_mapper::{MapperOptions, Objective};
use ulm_mapping::{Mapping, SpatialUnroll};
use ulm_model::ModelOptions;
use ulm_serve::fingerprint_value;
use ulm_workload::{Layer, Precision};

/// value -> JSON text -> value -> T, checking equality and fingerprint
/// stability at every hop.
fn round_trip<T>(original: &T)
where
    T: Serialize + Deserialize + PartialEq + std::fmt::Debug,
{
    let value = original.to_value();
    let text = serde_json::to_string(&value).expect("serializes");
    let reparsed: Value = serde_json::from_str(&text).expect("parses back");
    assert_eq!(
        fingerprint_value(&value),
        fingerprint_value(&reparsed),
        "fingerprint drifted across a JSON print/parse cycle"
    );
    let back = T::from_value(&reparsed).expect("deserializes");
    assert_eq!(original, &back, "value changed across the round trip");
    // Serialization is deterministic: same input, same bytes.
    assert_eq!(text, serde_json::to_string(&original.to_value()).unwrap());
}

#[test]
fn architecture_round_trips() {
    for chip in [
        presets::toy_chip(),
        presets::validation_chip(),
        presets::scaled_case_study_chip(16, 128),
        presets::scaled_case_study_chip(32, 1024),
    ] {
        round_trip(&chip.arch);
    }
}

#[test]
fn spatial_unroll_round_trips() {
    let chip = presets::scaled_case_study_chip(16, 128);
    round_trip(&SpatialUnroll::new(chip.spatial));
}

#[test]
fn layer_round_trips() {
    round_trip(&Layer::matmul("l", 64, 96, 640, Precision::int8_out24()));
    round_trip(&Layer::matmul("m", 8, 1, 3, Precision::int8_acc24()));
}

#[test]
fn mapping_round_trips() {
    // A real mapping, produced by a search rather than hand-assembled.
    let chip = presets::toy_chip();
    let layer = Layer::matmul("t", 4, 4, 8, Precision::int8_acc24());
    let result =
        ulm_mapper::Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()))
            .search(Objective::Latency)
            .expect("toy space has legal mappings");
    round_trip::<Mapping>(&result.best.mapping);
}

#[test]
fn options_round_trip() {
    round_trip(&ModelOptions::default());
    round_trip(&ModelOptions {
        bw_aware: false,
        ..ModelOptions::default()
    });
    round_trip(&MapperOptions::default());
    round_trip(&MapperOptions {
        max_exhaustive: 123_456,
        samples: 7,
        seed: 42,
        bw_aware: false,
    });
}

#[test]
fn u128_fields_survive_round_trips() {
    // MapperOptions::max_exhaustive is u128; values beyond u64 must come
    // back intact (they serialize as decimal strings).
    let big = MapperOptions {
        max_exhaustive: u128::from(u64::MAX) + 17,
        ..MapperOptions::default()
    };
    round_trip(&big);
}
