//! # ulm — A Uniform Latency Model for DNN Accelerators
//!
//! A from-scratch Rust reproduction of *"A Uniform Latency Model for DNN
//! Accelerators with Diverse Architectures and Dataflows"* (DATE 2022):
//! an analytical intra-layer clock-cycle model that works across memory
//! hierarchies with arbitrary capacity / bandwidth / port /
//! double-buffering configurations and arbitrary dataflows, plus every
//! substrate the paper's evaluation depends on — workload and mapping
//! representations, a ZigZag-style mapper, an energy and area model, a
//! discrete-event reference simulator and an architecture-DSE driver.
//!
//! This crate is the facade: it re-exports the workspace crates and
//! offers a [`prelude`] for one-line imports.
//!
//! ## Quick start
//!
//! ```
//! use ulm::prelude::*;
//!
//! // Hardware: the paper's scaled-down case-study chip (16x16 MACs,
//! // 1 MB GB at 128 bit/cycle).
//! let arch = presets::case_study_chip(128);
//! // Algorithm: an Im2Col-lowered layer.
//! let layer = Layer::matmul("demo", 64, 96, 640, Precision::int8_out24());
//! // Mapping: let the mapper find the lowest-latency dataflow.
//! let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
//! let result = Mapper::new(&arch, &layer, spatial).search(Objective::Latency)?;
//! let report = &result.best.latency;
//! assert!(report.utilization > 0.0);
//! println!("{report}");
//! # Ok::<(), UlmError>(())
//! ```

pub use ulm_arch as arch;
pub use ulm_dse as dse;
pub use ulm_energy as energy;
pub use ulm_error as error;
pub use ulm_mapper as mapper;
pub use ulm_mapping as mapping;
pub use ulm_model as model;
pub use ulm_network as network;
pub use ulm_periodic as periodic;
pub use ulm_reactor as reactor;
pub use ulm_serve as serve;
pub use ulm_sim as sim;
pub use ulm_workload as workload;

/// One-line imports for the common workflow.
pub mod prelude {
    pub use ulm_arch::{
        presets, Architecture, AreaModel, MacArray, Memory, MemoryHierarchy, MemoryId, MemoryKind,
        Port, PortUse, StallIntegration,
    };
    pub use ulm_dse::{
        enumerate_designs, explore, explore_bw_sweep, explore_with_stats, explore_workload_sweep,
        pareto_front, DesignParams, DsePoint, DseStats, ExploreOptions, MemoryPool, SweepStats,
        WorkloadPoint, WorkloadSweepStats,
    };
    pub use ulm_energy::{EnergyModel, EnergyReport, EnergyScratch};
    pub use ulm_error::UlmError;
    pub use ulm_mapper::{
        EvalScratch, EvaluatedMapping, Mapper, MapperOptions, Objective, SearchResult, SearchStats,
    };
    pub use ulm_mapping::{
        FuseError, FusedSegment, LoopStack, MappedLayer, Mapping, MappingError, OperandAlloc,
        SegmentResidency, SpatialUnroll, TemporalLoop,
    };
    pub use ulm_model::{
        apply_overrides, parse_measurements, roofline_bound, Calibration, CalibrationFit,
        Calibrator, FastLatency, InputDelta, KnobError, LatencyModel, LatencyReport, LoweredLayer,
        MappingShape, ModelOptions, ModelScratch, RebuildStats, Scenario, SpecializedModel,
    };
    pub use ulm_network::{InterLayerOverlap, NetworkEvaluator, NetworkReport};
    pub use ulm_serve::{EvalService, Fingerprint, ResultCache, ServeOptions, WorkerPool};
    pub use ulm_sim::{SimReport, Simulator};
    pub use ulm_workload::{
        im2col, networks, Dim, DimSizes, Layer, LayerShape, LayerType, Operand, PerOperand,
        Precision,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_names_resolve() {
        use crate::prelude::*;
        let chip = presets::toy_chip();
        let layer = Layer::matmul("t", 4, 4, 8, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let r = Mapper::new(&chip.arch, &layer, spatial)
            .search(Objective::Latency)
            .expect("toy space has legal mappings");
        assert!(r.best.latency.cc_total > 0.0);
    }
}
