//! Cross-crate sanity: the analytical model and the discrete-event
//! simulator must agree on total latency within a bounded relative error
//! on representative AHM points. This is the micro version of the Fig. 5c
//! validation experiment: optimized mappings agree tightly, arbitrary
//! hand-written ones within a looser bound.

use ulm_arch::presets;
use ulm_mapper::{Mapper, MapperOptions, Objective};
use ulm_mapping::{LoopStack, MappedLayer, Mapping, SpatialUnroll};
use ulm_model::LatencyModel;
use ulm_sim::Simulator;
use ulm_workload::{Dim, Layer, Precision};

/// Relative disagreement |model − sim| / sim for an explicit mapping.
fn err_for(layer: &Layer, arch: &ulm_arch::Architecture, mapping: &Mapping) -> (f64, f64, f64) {
    let view = MappedLayer::new(layer, arch, mapping).expect("legal mapping");
    let model = LatencyModel::new().evaluate(&view);
    let sim = Simulator::new().simulate(&view).expect("within cap");
    let m = model.cc_total;
    let s = sim.total_cycles as f64;
    ((m - s).abs() / s, m, s)
}

#[test]
fn toy_point_agrees_within_30_percent() {
    // The toy chip is a deliberate worst case: 1-cycle refill periods on
    // a shared port. Eq. (2) sums the individually-positive stalls but
    // cannot see that the two already-stalling links also serialize
    // against each other, so the analytical model undershoots here — the
    // same class of error behind the paper's 94.3%-not-100% validation.
    let chip = presets::toy_chip();
    let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
    let mapping = Mapping::with_greedy_alloc(
        &chip.arch,
        &layer,
        SpatialUnroll::new(chip.spatial.clone()),
        LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
    )
    .unwrap();
    let (err, m, s) = err_for(&layer, &chip.arch, &mapping);
    assert!(err < 0.30, "model {m} vs sim {s} (err {err:.3})");
}

#[test]
fn optimized_case_study_point_agrees_within_15_percent() {
    // A mid-size layer: on very small layers the pre-load/tail phases and
    // per-block quantization dominate and agreement legitimately degrades
    // (visible in Fig. 5c's smallest layers too).
    let arch = presets::case_study_chip(128);
    let layer = Layer::matmul("mm", 256, 128, 512, Precision::int8_acc24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let best = Mapper::new(&arch, &layer, spatial)
        .with_options(MapperOptions {
            max_exhaustive: 2_000,
            samples: 100,
            ..MapperOptions::default()
        })
        .search(Objective::Latency)
        .unwrap()
        .best;
    let (err, m, s) = err_for(&layer, &arch, &best.mapping);
    assert!(err < 0.15, "model {m} vs sim {s} (err {err:.3})");
}

#[test]
fn optimized_validation_chip_point_agrees_within_15_percent() {
    let chip = presets::validation_chip();
    let layer = Layer::matmul("mm", 512, 128, 256, Precision::int8_acc24());
    let best = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()))
        .with_options(MapperOptions {
            max_exhaustive: 2_000,
            samples: 100,
            ..MapperOptions::default()
        })
        .search(Objective::Latency)
        .unwrap()
        .best;
    let (err, m, s) = err_for(&layer, &chip.arch, &best.mapping);
    assert!(err < 0.15, "model {m} vs sim {s} (err {err:.3})");
}
