//! Transfer-schedule extraction: turn a mapped layer into the exact list
//! of block transfers the memory system must perform, with each transfer's
//! readiness window, deadline and data dependencies.
//!
//! Unlike the analytical model — which reasons about *steady-state rates*
//! and periodic windows — the simulator enumerates every individual block
//! movement, discovers which loop-nest periods actually move data (pure
//! reuse across irrelevant loops moves none), and executes them against
//! port availability. This independence is what makes the model-vs-sim
//! comparison a meaningful validation.

use std::collections::HashMap;
use ulm_arch::{MemoryId, PortId, PortUse};
use ulm_mapping::MappedLayer;
use ulm_model::{DtlOptions, LoweredLayer};
use ulm_workload::Operand;

/// What a scheduled transfer does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferKind {
    /// W/I block moving down into a level.
    Refill,
    /// O block draining up out of a level.
    Drain,
    /// Partial sums returning down into a level.
    Readback,
}

/// One block transfer.
#[derive(Debug, Clone)]
pub struct Transfer {
    /// Dense id (index into the schedule).
    pub id: usize,
    /// The operand moved.
    pub operand: Operand,
    /// Transfer kind.
    pub kind: TransferKind,
    /// Level (in the operand's chain) whose block moves.
    pub level: usize,
    /// The loop-nest period index this transfer serves.
    pub period: u64,
    /// Earliest compute cycle at which the transfer may begin.
    pub ready_cycle: u64,
    /// Compute cycle the transfer must precede (`u64::MAX` = only the
    /// final drain tail, no compute blocks on it).
    pub need_cycle: u64,
    /// Bits moved.
    pub bits: u64,
    /// Effective link bandwidth, bits/cycle (min over the two ports).
    pub link_bw: u64,
    /// The ports occupied for the transfer's duration.
    pub ports: Vec<(MemoryId, PortId)>,
    /// Transfers that must complete before this one starts.
    pub deps: Vec<usize>,
}

impl Transfer {
    /// Cycles the transfer occupies its ports.
    pub fn duration(&self) -> u64 {
        self.bits.div_ceil(self.link_bw)
    }
}

/// Error raised when a layer/mapping would generate an impractically large
/// schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTooLarge {
    /// Transfers the schedule would need.
    pub transfers: u64,
    /// The configured cap.
    pub cap: u64,
}

impl std::fmt::Display for ScheduleTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation schedule needs {} transfers, cap is {}",
            self.transfers, self.cap
        )
    }
}

impl std::error::Error for ScheduleTooLarge {}

/// The full schedule for one mapped layer.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// All transfers, id-ordered.
    pub transfers: Vec<Transfer>,
    /// Total compute cycles (`CC_spatial`).
    pub total_cycles: u64,
}

/// Builds the schedule, lowering the view internally.
///
/// # Errors
///
/// Returns [`ScheduleTooLarge`] if more than `cap` transfers would be
/// generated.
pub fn build_schedule(view: &MappedLayer<'_>, cap: u64) -> Result<Schedule, ScheduleTooLarge> {
    build_schedule_lowered(view, &LoweredLayer::build(view, DtlOptions::default()), cap)
}

/// Builds the schedule from an already-lowered layer: every block count,
/// turnaround period and region comes from the same
/// [`LoweredLayer`] tables the analytical model and the energy model
/// read, so the three consumers cannot disagree about what data moves.
///
/// # Errors
///
/// Returns [`ScheduleTooLarge`] if more than `cap` transfers would be
/// generated.
pub fn build_schedule_lowered(
    view: &MappedLayer<'_>,
    lowered: &LoweredLayer,
    cap: u64,
) -> Result<Schedule, ScheduleTooLarge> {
    let h = view.arch().hierarchy();
    let layer = view.layer();
    let total = lowered.cc_spatial();

    // Pre-flight size check using the exact refill counts. Interfaces
    // above a residency pin (KV-cache, fused intermediates) move nothing.
    let mut est: u64 = 0;
    for op in Operand::all() {
        for level in 0..lowered.active_interfaces(op) {
            est += 2 * lowered.level(op, level).refills; // refills or drains+readbacks
        }
    }
    if est > cap {
        return Err(ScheduleTooLarge {
            transfers: est,
            cap,
        });
    }

    let mut transfers: Vec<Transfer> = Vec::new();
    // For refill dependency lookup: (op, level) -> per-period covering
    // transfer id. Stored for every level that has refills.
    let mut covering: HashMap<(Operand, usize), Vec<usize>> = HashMap::new();

    // Build top-down so a lower level can reference its upper level's
    // covering transfers.
    for op in Operand::all() {
        let chain = h.chain(op);
        let active = lowered.active_interfaces(op);
        if active == 0 {
            continue;
        }
        let op_bits = layer.precision().bits(op);
        for level in (0..active).rev() {
            let lower = chain[level];
            let upper = chain[level + 1];
            let lower_mem = h.mem(lower);
            let row = *lowered.level(op, level);
            let period = row.period;
            let z = row.z;
            let words = row.words;
            let run = row.run;
            let db = lower_mem.is_double_buffered();
            // The topmost *active* level never refills from above — for a
            // pinned operand its content is already resident there.
            let upper_is_top = level + 1 >= active;

            match op {
                Operand::W | Operand::I => {
                    let (wp, wbw) = h.port(lower, op, PortUse::WriteIn);
                    let (rp, rbw) = h.port(upper, op, PortUse::ReadOut);
                    let link_bw = wbw.min(rbw);
                    let mut cover = Vec::with_capacity(z as usize);
                    let mut last_region = None;
                    for j in 0..z {
                        let region = lowered.region(op, level, j);
                        if last_region == Some(region) {
                            let prev = *cover.last().expect("first period always transfers");
                            cover.push(prev);
                            continue;
                        }
                        last_region = Some(region);
                        let ready_cycle = if db || run == 1 {
                            (j.saturating_sub(1)) * period
                        } else {
                            (j * period).saturating_sub(period / run)
                        };
                        let need_cycle = j * period;
                        // Data dependency: the upper-level block covering
                        // this period must already have arrived.
                        let mut deps = Vec::new();
                        if !upper_is_top {
                            let up_period = lowered.level(op, level + 1).period;
                            let jj = need_cycle / up_period;
                            let up_cover = &covering[&(op, level + 1)];
                            deps.push(up_cover[jj as usize]);
                        }
                        let id = transfers.len();
                        cover.push(id);
                        transfers.push(Transfer {
                            id,
                            operand: op,
                            kind: TransferKind::Refill,
                            level,
                            period: j,
                            ready_cycle,
                            need_cycle,
                            bits: words * op_bits,
                            link_bw,
                            ports: vec![(upper, rp), (lower, wp)],
                            deps,
                        });
                    }
                    covering.insert((op, level), cover);
                }
                Operand::O => {
                    // A replicated output register file is a reduction /
                    // drain pipeline: the extra physical copies buffer
                    // in-flight blocks, so draining and psum re-loading
                    // may overlap neighbouring periods like a
                    // double-buffered memory.
                    let relaxed = db || lower_mem.replication() > 1;
                    let out_bits = layer.precision().output_bits(row.final_above);
                    let (drp, drbw) = h.port(lower, op, PortUse::ReadOut);
                    let (dwp, dwbw) = h.port(upper, op, PortUse::WriteIn);
                    let drain_bw = drbw.min(dwbw);
                    let (rrp, rrbw) = h.port(upper, op, PortUse::ReadOut);
                    let (rwp, rwbw) = h.port(lower, op, PortUse::WriteIn);
                    let rb_bw = rrbw.min(rwbw);
                    // Last drain id per region (for read-back deps) and
                    // previous-period drain (for register-free deps).
                    let mut last_drain_of_region: HashMap<u64, usize> = HashMap::new();
                    let mut prev_drain: Option<usize> = None;
                    for j in 0..z {
                        let region = lowered.region(op, level, j);
                        let next_region = if j + 1 < z {
                            Some(lowered.region(op, level, j + 1))
                        } else {
                            None
                        };
                        // Read-back first: re-entering a region seen before.
                        let prev_region = if j > 0 {
                            Some(lowered.region(op, level, j - 1))
                        } else {
                            None
                        };
                        if prev_region != Some(region) {
                            if let Some(&src) = last_drain_of_region.get(&region) {
                                // Strictly single-buffered registers must
                                // first drain the outgoing block before old
                                // psums can land; a pipeline (or double
                                // buffer) lets the read-back prefetch one
                                // period ahead.
                                let mut deps = vec![src];
                                let ready_cycle = if relaxed {
                                    (j.saturating_sub(1)) * period
                                } else {
                                    if let Some(pd) = prev_drain {
                                        deps.push(pd);
                                    }
                                    j * period
                                };
                                let id = transfers.len();
                                transfers.push(Transfer {
                                    id,
                                    operand: op,
                                    kind: TransferKind::Readback,
                                    level,
                                    period: j,
                                    ready_cycle,
                                    need_cycle: j * period,
                                    bits: words * layer.precision().partial_sum_bits(),
                                    link_bw: rb_bw,
                                    ports: vec![(upper, rrp), (lower, rwp)],
                                    deps,
                                });
                            }
                        }
                        // Drain at the end of the region's last period.
                        if next_region != Some(region) {
                            let ready_cycle = if run == 1 {
                                // Streaming outputs finalize progressively:
                                // draining may overlap the whole period.
                                j * period
                            } else {
                                // Accumulated outputs finalize at period end
                                // (double-buffered or not).
                                (j + 1) * period
                            };
                            let need_cycle = if relaxed {
                                // One period of slack before the registers
                                // are needed again (shadow buffer or spare
                                // pipeline slots).
                                (j + 2) * period
                            } else {
                                (j + 1) * period
                            };
                            let need_cycle = if need_cycle >= total && j + 1 >= z {
                                u64::MAX // final tail: offload, not a stall
                            } else {
                                need_cycle
                            };
                            let id = transfers.len();
                            last_drain_of_region.insert(region, id);
                            prev_drain = Some(id);
                            transfers.push(Transfer {
                                id,
                                operand: op,
                                kind: TransferKind::Drain,
                                level,
                                period: j,
                                ready_cycle: ready_cycle.min(total),
                                need_cycle,
                                bits: words * out_bits,
                                link_bw: drain_bw,
                                ports: vec![(lower, drp), (upper, dwp)],
                                deps: Vec::new(),
                            });
                        }
                    }
                }
            }
        }
    }

    Ok(Schedule {
        transfers,
        total_cycles: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn toy(stack: &[(Dim, u64)]) -> (ulm_arch::presets::PresetChip, Layer, Mapping) {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(stack),
        )
        .unwrap();
        (chip, layer, mapping)
    }

    #[test]
    fn transfer_counts_match_refill_counts() {
        let (chip, layer, mapping) = toy(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let s = build_schedule(&view, 1 << 20).unwrap();
        let w_refills = s
            .transfers
            .iter()
            .filter(|t| t.operand == Operand::W && t.kind == TransferKind::Refill)
            .count() as u64;
        assert_eq!(w_refills, view.refill_count(Operand::W, 0));
        let drains = s
            .transfers
            .iter()
            .filter(|t| t.kind == TransferKind::Drain)
            .count() as u64;
        assert_eq!(drains, view.refill_count(Operand::O, 0));
        // Fully output stationary: no read-backs.
        assert!(s.transfers.iter().all(|t| t.kind != TransferKind::Readback));
    }

    #[test]
    fn split_c_generates_readbacks() {
        let (chip, layer, mapping) = toy(&[(Dim::C, 4), (Dim::B, 2), (Dim::K, 2), (Dim::C, 2)]);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let s = build_schedule(&view, 1 << 20).unwrap();
        let readbacks: Vec<&Transfer> = s
            .transfers
            .iter()
            .filter(|t| t.kind == TransferKind::Readback)
            .collect();
        // 4 regions, each revisited once by the outer C2 -> 4 read-backs.
        assert_eq!(readbacks.len(), 4);
        // Each read-back depends on the drain that parked its psums.
        for rb in readbacks {
            assert!(!rb.deps.is_empty());
        }
    }

    #[test]
    fn reuse_periods_produce_no_transfers() {
        // B2 innermost, W-Reg holds nothing: B-iterations reuse W fully.
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let stack = LoopStack::from_pairs(&[(Dim::B, 2), (Dim::C, 8), (Dim::K, 2)]);
        // Non-canonical W alloc on purpose: B2 stays above the regs.
        let allocs = ulm_workload::PerOperand::new(
            ulm_mapping::OperandAlloc::new(vec![0, 3]),
            ulm_mapping::OperandAlloc::new(vec![0, 3]),
            ulm_mapping::OperandAlloc::new(vec![0, 3]),
        );
        let mapping = Mapping::new(spatial, stack, allocs);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let s = build_schedule(&view, 1 << 20).unwrap();
        let w_refills = s
            .transfers
            .iter()
            .filter(|t| t.operand == Operand::W && t.kind == TransferKind::Refill)
            .count() as u64;
        // Z = 32 periods but only 16 distinct blocks.
        assert_eq!(view.z(Operand::W, 0), 32);
        assert_eq!(w_refills, 16);
    }

    #[test]
    fn cap_is_enforced() {
        let (chip, layer, mapping) = toy(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let err = build_schedule(&view, 4).unwrap_err();
        assert!(err.transfers > 4);
    }

    #[test]
    fn deadlines_are_consistent() {
        let (chip, layer, mapping) = toy(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let s = build_schedule(&view, 1 << 20).unwrap();
        for t in &s.transfers {
            assert!(t.ready_cycle <= t.need_cycle, "{t:?}");
            assert!(t.duration() > 0);
            for &d in &t.deps {
                assert!(d < t.id, "deps must precede: {t:?}");
            }
        }
    }
}
