//! Execution traces: per-port transfer timelines and compute-stall
//! intervals, with an ASCII renderer in the spirit of the paper's Fig. 4
//! "memory-compute timeline" illustration.

use crate::schedule::TransferKind;
use std::fmt::Write as _;
use ulm_arch::{MemoryId, PortId};
use ulm_workload::Operand;

/// One transfer as executed (wall-clock timed).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The operand moved.
    pub operand: Operand,
    /// The transfer kind.
    pub kind: TransferKind,
    /// The level served.
    pub level: usize,
    /// The loop-nest period index.
    pub period: u64,
    /// Wall-clock start.
    pub start: f64,
    /// Wall-clock end.
    pub end: f64,
    /// Ports occupied.
    pub ports: Vec<(MemoryId, PortId)>,
}

/// A recorded execution: transfers plus compute-stall intervals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Executed transfers in schedule order.
    pub events: Vec<TraceEvent>,
    /// Wall-clock intervals during which computation was stalled.
    pub stalls: Vec<(f64, f64)>,
    /// Total wall-clock cycles.
    pub total: f64,
}

impl Trace {
    /// Renders an ASCII timeline: one lane per (memory, port) plus a
    /// compute lane, `width` characters across the whole execution.
    ///
    /// Lane glyphs: `#` transfer in flight, `.` idle; the compute lane
    /// shows `=` for active computation and `!` for stall.
    pub fn render_ascii(
        &self,
        width: usize,
        port_name: impl Fn(MemoryId, PortId) -> String,
    ) -> String {
        let width = width.max(10);
        let scale = self.total / width as f64;
        let mut lanes: Vec<((MemoryId, PortId), Vec<char>)> = Vec::new();
        let lane_of =
            |p: (MemoryId, PortId), lanes: &mut Vec<((MemoryId, PortId), Vec<char>)>| -> usize {
                if let Some(i) = lanes.iter().position(|(q, _)| *q == p) {
                    i
                } else {
                    lanes.push((p, vec!['.'; width]));
                    lanes.len() - 1
                }
            };
        for e in &self.events {
            for &p in &e.ports {
                let li = lane_of(p, &mut lanes);
                let lo = ((e.start / scale) as usize).min(width - 1);
                let hi = ((e.end / scale).ceil() as usize).clamp(lo + 1, width);
                for c in &mut lanes[li].1[lo..hi] {
                    *c = '#';
                }
            }
        }
        let mut compute = vec!['='; width];
        for &(lo, hi) in &self.stalls {
            let a = ((lo / scale) as usize).min(width - 1);
            let b = ((hi / scale).ceil() as usize).clamp(a + 1, width);
            for c in &mut compute[a..b] {
                *c = '!';
            }
        }
        lanes.sort_by_key(|((m, p), _)| (*m, *p));
        let mut out = String::new();
        let name_width = lanes
            .iter()
            .map(|((m, p), _)| port_name(*m, *p).len())
            .chain(["compute".len()])
            .max()
            .unwrap_or(7);
        for ((m, p), lane) in &lanes {
            let _ = writeln!(
                out,
                "{:<name_width$} |{}|",
                port_name(*m, *p),
                lane.iter().collect::<String>()
            );
        }
        let _ = writeln!(
            out,
            "{:<name_width$} |{}|",
            "compute",
            compute.iter().collect::<String>()
        );
        out
    }

    /// Fraction of wall-clock time computation was stalled.
    pub fn stall_fraction(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.stalls.iter().map(|(a, b)| b - a).sum::<f64>() / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::MemoryId;

    fn ev(start: f64, end: f64, mem: usize) -> TraceEvent {
        TraceEvent {
            operand: Operand::W,
            kind: TransferKind::Refill,
            level: 0,
            period: 0,
            start,
            end,
            ports: vec![(MemoryId(mem), 0)],
        }
    }

    #[test]
    fn render_marks_busy_and_stall_regions() {
        let trace = Trace {
            events: vec![ev(0.0, 5.0, 0), ev(5.0, 10.0, 1)],
            stalls: vec![(2.0, 4.0)],
            total: 10.0,
        };
        let s = trace.render_ascii(20, |m, p| format!("m{}p{p}", m.0));
        // First lane busy in the first half, second in the second half.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("m0p0"));
        assert!(lines[0][..lines[0].len() / 2].contains('#'));
        assert!(lines[1].ends_with('|'));
        assert!(lines[2].contains('!'), "{s}");
        assert!(lines[2].contains('='), "{s}");
    }

    #[test]
    fn stall_fraction_is_measured() {
        let trace = Trace {
            events: vec![],
            stalls: vec![(0.0, 2.0), (8.0, 10.0)],
            total: 10.0,
        };
        assert!((trace.stall_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(Trace::default().stall_fraction(), 0.0);
    }
}
