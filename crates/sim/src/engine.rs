//! The discrete-event execution engine: runs a [`Schedule`] against the
//! physical ports and reports the observed cycle counts.

use crate::schedule::{Schedule, TransferKind};
use crate::trace::{Trace, TraceEvent};
use std::collections::{BTreeMap, HashMap};
use ulm_arch::{MemoryId, PortId};

/// Per-port occupancy statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct PortBusy {
    /// The memory owning the port.
    pub mem: MemoryId,
    /// The port index.
    pub port: PortId,
    /// Cycles the port spent transferring (fractional: consecutive beats
    /// pack on the bus).
    pub busy_cycles: f64,
}

/// The simulator's observation of one layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end cycles: pre-load + compute (with stalls) + drain tail.
    pub total_cycles: u64,
    /// Pure compute cycles (`CC_spatial`).
    pub compute_cycles: u64,
    /// Cycles compute sat waiting for transfers (pre-load included).
    pub stall_cycles: u64,
    /// Cycles spent pre-loading before the first compute cycle.
    pub preload_cycles: u64,
    /// Cycles of drain tail after the last compute cycle.
    pub tail_cycles: u64,
    /// Number of transfers executed.
    pub transfers: u64,
    /// Port busy statistics.
    pub ports: Vec<PortBusy>,
}

impl SimReport {
    /// Observed MAC-array utilization against the executed schedule.
    pub fn utilization(&self, cc_ideal: f64) -> f64 {
        cc_ideal / self.total_cycles as f64
    }
}

#[derive(Default)]
struct Bucket {
    starts: Vec<usize>,
    needs: Vec<usize>,
}

/// Executes the schedule and returns the observed cycle counts.
///
/// Compute advances one loop-nest iteration per wall cycle except when a
/// transfer with a deadline at the current boundary has not finished;
/// transfers contend for their ports in deterministic FIFO order. Time is
/// tracked fractionally: a 768-bit block on a 512-bit bus occupies the
/// port for 1.5 cycles, and back-to-back blocks pack (real streaming
/// buses do not waste partial beats between consecutive bursts).
pub fn run(schedule: &Schedule) -> SimReport {
    run_inner(schedule, None).0
}

/// [`run`], additionally recording a full [`Trace`] of every transfer and
/// compute-stall interval for timeline rendering.
pub fn run_traced(schedule: &Schedule) -> (SimReport, Trace) {
    let mut trace = Trace::default();
    let report = {
        let (r, t) = run_inner(schedule, Some(trace));
        trace = t.expect("trace requested");
        r
    };
    (report, trace)
}

fn run_inner(schedule: &Schedule, trace: Option<Trace>) -> (SimReport, Option<Trace>) {
    let mut trace = trace;
    let transfers = &schedule.transfers;
    let total = schedule.total_cycles;

    // Bucket transfers by compute-cycle boundary.
    let mut events: BTreeMap<u64, Bucket> = BTreeMap::new();
    for t in transfers {
        events.entry(t.ready_cycle).or_default().starts.push(t.id);
        if t.need_cycle != u64::MAX && t.need_cycle <= total {
            events.entry(t.need_cycle).or_default().needs.push(t.id);
        }
    }
    events.entry(total).or_default();

    // Deterministic start order within a boundary: drains release
    // registers, then refills, then read-backs (which depend on drains);
    // higher levels first so lower-level dependencies are satisfied.
    let kind_rank = |k: TransferKind| match k {
        TransferKind::Drain => 0u8,
        TransferKind::Refill => 1,
        TransferKind::Readback => 2,
    };
    for bucket in events.values_mut() {
        bucket.starts.sort_by_key(|&id| {
            let t = &transfers[id];
            (
                kind_rank(t.kind),
                std::cmp::Reverse(t.level),
                t.operand.index(),
                t.id,
            )
        });
    }

    let mut wall: f64 = 0.0;
    let mut prev_cycle: u64 = 0;
    let mut stall: f64 = 0.0;
    let mut preload: f64 = 0.0;
    let mut done: Vec<Option<f64>> = vec![None; transfers.len()];
    let mut port_free: HashMap<(MemoryId, PortId), f64> = HashMap::new();
    let mut port_busy: HashMap<(MemoryId, PortId), f64> = HashMap::new();

    for (&cycle, bucket) in &events {
        if cycle > total {
            break;
        }
        // Compute advances freely between boundaries.
        wall += (cycle - prev_cycle) as f64;
        prev_cycle = cycle;
        // Starts first: transfers become eligible the moment compute
        // arrives (a zero-window transfer — ready == need — starts here
        // and immediately stalls compute below).
        for &id in &bucket.starts {
            let t = &transfers[id];
            let mut start = wall;
            for &dep in &t.deps {
                start = start.max(done[dep].expect("dependencies are scheduled first"));
            }
            for &p in &t.ports {
                start = start.max(*port_free.get(&p).unwrap_or(&0.0));
            }
            let dur = t.bits as f64 / t.link_bw as f64;
            let finish = start + dur;
            for &p in &t.ports {
                port_free.insert(p, finish);
                *port_busy.entry(p).or_insert(0.0) += dur;
            }
            done[id] = Some(finish);
            if let Some(tr) = trace.as_mut() {
                tr.events.push(TraceEvent {
                    operand: t.operand,
                    kind: t.kind,
                    level: t.level,
                    period: t.period,
                    start,
                    end: finish,
                    ports: t.ports.clone(),
                });
            }
        }
        // Deadlines: compute may not pass this boundary until met.
        for &id in &bucket.needs {
            let d = done[id].expect("needed transfer was scheduled at or before its deadline");
            if d > wall {
                let s = d - wall;
                stall += s;
                if cycle == 0 {
                    preload += s;
                }
                if let Some(tr) = trace.as_mut() {
                    tr.stalls.push((wall, d));
                }
                wall = d;
            }
        }
    }

    // Drain tail: the layer finishes when the last transfer lands.
    let compute_end = wall;
    let last_done = done.iter().flatten().copied().fold(0.0f64, f64::max);
    let total = compute_end.max(last_done);
    let total_cycles = total.ceil() as u64;
    let tail_cycles = (total - compute_end).round() as u64;

    let mut ports: Vec<PortBusy> = port_busy
        .into_iter()
        .map(|((mem, port), busy_cycles)| PortBusy {
            mem,
            port,
            busy_cycles,
        })
        .collect();
    ports.sort_by_key(|p| (p.mem, p.port));

    if let Some(tr) = trace.as_mut() {
        tr.total = total;
    }
    (
        SimReport {
            total_cycles,
            compute_cycles: schedule.total_cycles,
            stall_cycles: stall.round() as u64,
            preload_cycles: preload.round() as u64,
            tail_cycles,
            transfers: transfers.len() as u64,
            ports,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::build_schedule;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, MappedLayer, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn toy_sim(stack: &[(Dim, u64)]) -> SimReport {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(stack),
        )
        .unwrap();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let s = build_schedule(&view, 1 << 20).unwrap();
        run(&s)
    }

    #[test]
    fn totals_decompose() {
        let r = toy_sim(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        assert_eq!(r.compute_cycles, 32);
        assert!(r.total_cycles >= r.compute_cycles);
        assert_eq!(
            r.total_cycles,
            r.compute_cycles + r.stall_cycles + r.tail_cycles
        );
        assert!(r.preload_cycles <= r.stall_cycles);
        assert!(r.transfers > 0);
    }

    #[test]
    fn contended_port_stalls_more_than_generous_port() {
        // The toy LB read port (16 b/cy) serves both W and I refills of
        // 16 bits each per cycle-long period: 2 cycles of transfer per
        // 1-cycle period -> heavy stalls.
        let r = toy_sim(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        assert!(r.stall_cycles > 0, "{r:?}");
    }

    #[test]
    fn port_busy_accounting_is_conserved() {
        let r = toy_sim(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        // Every transfer occupies at least one port; summed busy over
        // ports >= total transfer durations... at least nonzero and no
        // port is busy longer than the whole execution.
        for p in &r.ports {
            assert!(p.busy_cycles <= r.total_cycles as f64);
        }
        assert!(!r.ports.is_empty());
    }

    #[test]
    fn wider_ports_reduce_total_time() {
        // Same schedule shape, but compare the toy chip against one with
        // double LB bandwidth by scaling the layer instead: C16 doubles
        // compute per refill, relaxing pressure per cycle.
        let tight = toy_sim(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 16, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 16), (Dim::B, 2), (Dim::K, 2)]),
        )
        .unwrap();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let s = build_schedule(&view, 1 << 20).unwrap();
        let bigger = run(&s);
        // Utilization comparison: the bigger-C layer has the same traffic
        // pattern per cycle, so stalls scale roughly with compute.
        let u_tight = 32.0 / tight.total_cycles as f64;
        let u_big = 64.0 / bigger.total_cycles as f64;
        assert!((u_tight - u_big).abs() < 0.2, "{u_tight} vs {u_big}");
    }
}
