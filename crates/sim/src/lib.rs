//! Block-granular discrete-event reference simulator.
//!
//! This crate is the repository's stand-in for the paper's validation
//! ground truth (an in-house taped-out accelerator and its RTL
//! simulation — see `DESIGN.md` §4). Given the same
//! [`MappedLayer`] the analytical model
//! evaluates, the simulator:
//!
//! 1. enumerates every *actual* block transfer the loop nest performs
//!    (pure data reuse across irrelevant loops moves nothing, partial sums
//!    make round trips, double-buffered levels may prefetch while
//!    non-double-buffered ones wait for their keep-out window);
//! 2. executes them event-by-event against the physical memory ports,
//!    with FIFO contention and cross-level data dependencies;
//! 3. reports the observed end-to-end cycle count and its breakdown.
//!
//! Because stalls *emerge* from event ordering here rather than from the
//! closed-form window algebra, agreement between the analytical
//! `LatencyModel` (crate `ulm-model`) and [`Simulator::simulate`] is a
//! meaningful validation of the model (Fig. 5c).
//!
//! # Example
//!
//! ```
//! use ulm_arch::presets;
//! use ulm_mapping::{LoopStack, Mapping, MappedLayer, SpatialUnroll};
//! use ulm_sim::Simulator;
//! use ulm_workload::{Dim, Layer, Precision};
//!
//! let chip = presets::toy_chip();
//! let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
//! let mapping = Mapping::with_greedy_alloc(
//!     &chip.arch,
//!     &layer,
//!     SpatialUnroll::new(chip.spatial.clone()),
//!     LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
//! )
//! .unwrap();
//! let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
//! let report = Simulator::new().simulate(&view)?;
//! assert!(report.total_cycles >= report.compute_cycles);
//! # Ok::<(), ulm_sim::ScheduleTooLarge>(())
//! ```

pub mod engine;
pub mod schedule;
pub mod trace;

pub use engine::{PortBusy, SimReport};
pub use schedule::{build_schedule_lowered, Schedule, ScheduleTooLarge, Transfer, TransferKind};
pub use trace::{Trace, TraceEvent};

use ulm_mapping::MappedLayer;

/// The reference simulator with its configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Simulator {
    /// Maximum number of block transfers a single layer may generate
    /// before simulation is refused (guards against degenerate mappings).
    pub max_transfers: u64,
}

impl Default for Simulator {
    fn default() -> Self {
        Self {
            max_transfers: 4_000_000,
        }
    }
}

impl Simulator {
    /// A simulator with the default transfer cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the transfer schedule for `view` and executes it.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleTooLarge`] when the mapping would generate more
    /// than [`max_transfers`](Self::max_transfers) block transfers.
    pub fn simulate(&self, view: &MappedLayer<'_>) -> Result<SimReport, ScheduleTooLarge> {
        let schedule = schedule::build_schedule(view, self.max_transfers)?;
        Ok(engine::run(&schedule))
    }

    /// Like [`simulate`](Self::simulate), but reads an already-lowered
    /// layer instead of re-lowering the view — use this to share one
    /// [`ulm_model::LoweredLayer`] between the analytical model, the
    /// energy model and the simulator.
    ///
    /// # Errors
    ///
    /// Same cap as [`simulate`](Self::simulate).
    pub fn simulate_lowered(
        &self,
        view: &MappedLayer<'_>,
        lowered: &ulm_model::LoweredLayer,
    ) -> Result<SimReport, ScheduleTooLarge> {
        let schedule = schedule::build_schedule_lowered(view, lowered, self.max_transfers)?;
        Ok(engine::run(&schedule))
    }

    /// Like [`simulate`](Self::simulate), but also records the full
    /// execution [`Trace`] for timeline rendering (Fig. 4-style).
    ///
    /// # Errors
    ///
    /// Same cap as [`simulate`](Self::simulate).
    pub fn simulate_traced(
        &self,
        view: &MappedLayer<'_>,
    ) -> Result<(SimReport, Trace), ScheduleTooLarge> {
        let schedule = schedule::build_schedule(view, self.max_transfers)?;
        Ok(engine::run_traced(&schedule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    #[test]
    fn simulator_respects_cap() {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
        )
        .unwrap();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let tiny = Simulator { max_transfers: 1 };
        assert!(tiny.simulate(&view).is_err());
        assert!(Simulator::new().simulate(&view).is_ok());
    }
}
