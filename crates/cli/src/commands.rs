//! The `ulm` subcommands.

use crate::args::{ArgError, Args};
use ulm::prelude::*;

/// Resolves `--arch` into an architecture plus its canonical spatial
/// unrolling. Accepts `case16` (default), `case32`, `case64`,
/// `validation` and `toy`; `--gb-bw` overrides the GB bandwidth of the
/// case-study family.
fn resolve_arch(args: &Args) -> Result<(Architecture, SpatialUnroll), UlmError> {
    if let Some(path) = args.get("arch-file") {
        let text = std::fs::read_to_string(path)?;
        let (arch, spatial) = ulm::arch::ArchDesc::from_json(&text)?.build()?;
        return Ok((arch, SpatialUnroll::new(spatial)));
    }
    let gb_bw = args.u64_or("gb-bw", 128)?;
    let name = args.get("arch").unwrap_or("case16");
    let chip = match name {
        "case16" => presets::scaled_case_study_chip(16, gb_bw),
        "case32" => presets::scaled_case_study_chip(32, gb_bw),
        "case64" => presets::scaled_case_study_chip(64, gb_bw),
        "validation" => presets::validation_chip(),
        "toy" => presets::toy_chip(),
        "fusion" => presets::fusion_chip(),
        other => {
            return Err(UlmError::config(format!(
                "unknown --arch `{other}` (try case16|case32|case64|validation|toy|fusion)"
            )))
        }
    };
    Ok((chip.arch, SpatialUnroll::new(chip.spatial)))
}

fn resolve_layer(args: &Args) -> Result<Layer, ArgError> {
    let (b, k, c) = args.layer_dims((64, 96, 640))?;
    let precision = match args.get("precision").unwrap_or("int8_out24") {
        "int8_acc24" => Precision::int8_acc24(),
        _ => Precision::int8_out24(),
    };
    Ok(Layer::matmul(format!("({b},{k},{c})"), b, k, c, precision))
}

fn mapper_options(args: &Args) -> Result<MapperOptions, ArgError> {
    Ok(MapperOptions {
        max_exhaustive: args.u64_or("max-exhaustive", 3_000)? as u128,
        samples: args.u64_or("samples", 120)? as usize,
        bw_aware: !args.flag("bw-unaware"),
        ..MapperOptions::default()
    })
}

/// `--key <n>` as a thread count: 0 or absent means "serial" (`None`).
fn thread_option(args: &Args, key: &str) -> Result<Option<usize>, ArgError> {
    Ok(match args.u64_or(key, 0)? {
        0 => None,
        n => Some(n as usize),
    })
}

/// `--batch-lanes <n>`: SoA lane count for the ordering search. 0 or
/// absent keeps the mapper default; the result is identical at every
/// setting.
fn batch_lanes_option(args: &Args) -> Result<Option<usize>, ArgError> {
    thread_option(args, "batch-lanes")
}

/// `ulm evaluate`: map one layer (best-latency search) and print the full
/// latency/energy report.
pub fn evaluate(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = resolve_arch(args)?;
    let layer = resolve_layer(args)?;
    let result = Mapper::new(&arch, &layer, spatial)
        .with_options(mapper_options(args)?)
        .search(Objective::Latency)?;
    let view = MappedLayer::new(&layer, &arch, &result.best.mapping)?;
    let energy = EnergyModel::new().evaluate(&view);
    if args.flag("json") {
        let out = serde_json::json!({
            "arch": arch.name(),
            "layer": layer.name(),
            "mapping": format!("{}", result.best.mapping),
            "latency": result.best.latency,
            "energy": energy,
        });
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!("architecture: {arch}");
        println!("layer: {layer} ({} MACs)", layer.total_macs());
        println!("mapping: {}", result.best.mapping);
        print!("{}", result.best.latency);
        let rl = ulm::model::roofline(&view);
        println!(
            "roofline bound: {:.0} cc ({}-bound at {})",
            rl.bound_cycles(),
            if rl.memory_bound() {
                "memory"
            } else {
                "compute"
            },
            rl.bottleneck()
        );
        for fix in result.best.latency.bandwidth_fixes().iter().take(3) {
            println!(
                "fix: raise {} from {:.0} to {:.0} b/cy (removes {:.0} cc of stall)",
                fix.port, fix.current_bw, fix.required_bw, fix.stall
            );
        }
        print!("{energy}");
    }
    Ok(())
}

/// `ulm whatif`: evaluate a base design, apply `--set
/// mem.<name>.<knob>=<value>` architecture overrides (`size`, `bw`,
/// `read_bw`, `write_bw`; values like `2x` or absolute bits), and report
/// the latency/energy deltas. The base's best mapping is searched once
/// and re-evaluated on the modified architecture through the dirty-stage
/// delta path — only the lowering stages the overrides invalidate are
/// recomputed. With `--verify`, the incremental result is additionally
/// checked bit for bit against a cold evaluation of the modified design.
pub fn whatif(args: &Args) -> Result<(), UlmError> {
    let overrides: Vec<String> = args.get_all("set").iter().map(|s| s.to_string()).collect();
    if overrides.is_empty() {
        return Err(UlmError::config(
            "ulm whatif needs at least one --set mem.<name>.<knob>=<value>",
        ));
    }
    let (arch, spatial) = resolve_arch(args)?;
    let layer = resolve_layer(args)?;
    let mopts = mapper_options(args)?;
    let result = Mapper::new(&arch, &layer, spatial)
        .with_options(mopts)
        .with_parallelism(thread_option(args, "threads")?)
        .search(Objective::Latency)?;
    let mapping = result.best.mapping;
    let (modified, delta) = apply_overrides(&arch, &overrides)?;

    let model = if mopts.bw_aware {
        LatencyModel::new()
    } else {
        LatencyModel::bw_unaware()
    };
    let mut scratch = ModelScratch::default();
    // Prime the stage pipeline on the base design, then rebuild only what
    // the overrides dirtied.
    let base_view = MappedLayer::new(&layer, &arch, &mapping)?;
    let (base, _) = model.evaluate_delta_fast(&base_view, InputDelta::ALL, &mut scratch);
    let view = MappedLayer::new(&layer, &modified, &mapping)?;
    let (fast, rebuild) = model.evaluate_delta_fast(&view, delta, &mut scratch);
    let energy = EnergyModel::new().evaluate_lowered(&view, scratch.lowered());
    let base_energy = result.best.energy;

    let verified = if args.flag("verify") {
        let cold = model.evaluate_fast(&view, &mut ModelScratch::default());
        if cold.cc_total.to_bits() != fast.cc_total.to_bits()
            || cold.ss_overall.to_bits() != fast.ss_overall.to_bits()
            || cold.utilization.to_bits() != fast.utilization.to_bits()
            || cold.preload != fast.preload
            || cold.offload != fast.offload
        {
            return Err(UlmError::config(format!(
                "whatif verification failed: incremental cc_total {} != cold {}",
                fast.cc_total, cold.cc_total
            )));
        }
        true
    } else {
        false
    };

    if args.flag("json") {
        let mut out = serde_json::json!({
            "arch": arch.name(),
            "layer": layer.name(),
            "mapping": format!("{mapping}"),
            "set": overrides,
            "base": {
                "cc_total": base.cc_total,
                "ss_overall": base.ss_overall,
                "utilization": base.utilization,
                "energy_fj": base_energy.total_fj,
            },
            "modified": {
                "cc_total": fast.cc_total,
                "ss_overall": fast.ss_overall,
                "utilization": fast.utilization,
                "energy_fj": energy.total_fj,
            },
            "delta": {
                "cc_total": fast.cc_total - base.cc_total,
                "energy_fj": energy.total_fj - base_energy.total_fj,
                "speedup": base.cc_total / fast.cc_total,
            },
            "rebuild": {
                "stages_rebuilt": rebuild.stages_rebuilt,
                "stages_skipped": rebuild.stages_skipped,
            },
        });
        if verified {
            if let serde_json::Value::Object(fields) = &mut out {
                fields.push(("verified".to_string(), serde_json::Value::Bool(true)));
            }
        }
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!("architecture: {arch}");
        println!("layer: {layer} ({} MACs)", layer.total_macs());
        println!("mapping: {mapping}");
        for over in &overrides {
            println!("override: {over}");
        }
        println!(
            "base:     {:>12.0} cc  U {:>5.1}%  {:>10.1} nJ",
            base.cc_total,
            base.utilization * 100.0,
            base_energy.total_pj() / 1000.0
        );
        println!(
            "modified: {:>12.0} cc  U {:>5.1}%  {:>10.1} nJ",
            fast.cc_total,
            fast.utilization * 100.0,
            energy.total_pj() / 1000.0
        );
        println!(
            "delta:    {:>+12.0} cc ({:.2}x speedup)  {:>+10.1} nJ",
            fast.cc_total - base.cc_total,
            base.cc_total / fast.cc_total,
            (energy.total_fj - base_energy.total_fj) / 1e6
        );
        println!(
            "rebuild: {} stages recomputed, {} reused",
            rebuild.stages_rebuilt, rebuild.stages_skipped
        );
        if verified {
            println!("verified: incremental result bit-identical to cold evaluation");
        }
    }
    Ok(())
}

/// `ulm search`: explore the mapping space under an objective and print
/// the best mapping (or the `--all` top list).
pub fn search(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = resolve_arch(args)?;
    let layer = resolve_layer(args)?;
    let objective = match args.get("objective").unwrap_or("latency") {
        "energy" => Objective::Energy,
        "edp" => Objective::Edp,
        _ => Objective::Latency,
    };
    let mapper = Mapper::new(&arch, &layer, spatial)
        .with_options(mapper_options(args)?)
        .with_parallelism(thread_option(args, "threads")?)
        .with_batch_lanes(batch_lanes_option(args)?);
    println!(
        "space: {} orderings ({} factors)",
        mapper.space_size(),
        mapper.factors().len()
    );
    if args.flag("all") {
        let mut all = mapper.enumerate_all()?;
        all.sort_by(|a, b| a.score(objective).total_cmp(&b.score(objective)));
        for em in all.iter().take(args.u64_or("top", 10)? as usize) {
            println!(
                "  {:>12.0} cc  {:>10.1} nJ  U {:>5.1}%  {}",
                em.latency.cc_total,
                em.energy.total_pj() / 1000.0,
                em.latency.utilization * 100.0,
                em.mapping
            );
        }
    } else {
        let r = mapper.search(objective)?;
        println!(
            "evaluated {} of {} generated ({})",
            r.stats.evaluated,
            r.stats.generated,
            if r.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            }
        );
        if args.flag("stats") {
            println!(
                "stats: {} pruned, {} prefix reuses, {} batch lanes, {:.2} ms",
                r.stats.pruned, r.stats.cache_hits, r.stats.batch_lanes, r.wall_ms
            );
        }
        println!("best mapping: {}", r.best.mapping);
        print!("{}", r.best.latency);
        println!("energy: {:.1} nJ", r.best.energy.total_pj() / 1000.0);
    }
    Ok(())
}

/// `ulm validate`: model vs discrete-event simulator on the hand-tracking
/// layers (the Fig. 5c experiment).
pub fn validate(args: &Args) -> Result<(), UlmError> {
    let chip = presets::validation_chip();
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let limit = args.u64_or("layers", u64::MAX)? as usize;
    let layers = networks::handtracking_validation_layers();
    let mut rows = Vec::new();
    let mut acc_sum = 0.0;
    for layer in layers.iter().take(limit) {
        let best = Mapper::new(&chip.arch, layer, spatial.clone())
            .with_options(mapper_options(args)?)
            .search(Objective::Latency)?
            .best;
        let view = MappedLayer::new(layer, &chip.arch, &best.mapping)?;
        let sim = Simulator::new().simulate(&view)?;
        let acc = (1.0
            - (best.latency.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64)
            * 100.0;
        acc_sum += acc;
        rows.push((
            layer.name().to_string(),
            best.latency.cc_total,
            sim.total_cycles,
            acc,
        ));
    }
    if args.flag("json") {
        let out = serde_json::json!({
            "layers": rows.iter().map(|(n, m, s, a)| serde_json::json!({
                "layer": n, "model_cc": m, "sim_cc": s, "accuracy_pct": a
            })).collect::<Vec<_>>(),
            "mean_accuracy_pct": acc_sum / rows.len() as f64,
        });
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        for (n, m, s, a) in &rows {
            println!("{n:<24} model {m:>10.0}  sim {s:>10}  acc {a:>5.1}%");
        }
        println!("mean accuracy: {:.1}%", acc_sum / rows.len() as f64);
    }
    Ok(())
}

/// `ulm dse`: architecture design-space exploration with a Pareto front.
pub fn dse(args: &Args) -> Result<(), UlmError> {
    let gb_bw = args.u64_or("gb-bw", 128)?;
    let sides = args.u64_list_or("sides", &[16, 32, 64])?;
    let (b, k, c) = args.layer_dims((256, 256, 64))?;
    let layer = Layer::matmul(format!("({b},{k},{c})"), b, k, c, Precision::int8_out24());
    let pool = MemoryPool::default();
    let designs = enumerate_designs(&pool, &sides, gb_bw);
    println!("exploring {} designs at GB {gb_bw} b/cy …", designs.len());
    let opts = ExploreOptions {
        parallelism: thread_option(args, "threads")?,
        mapping_parallelism: thread_option(args, "map-threads")?,
        batch_lanes: batch_lanes_option(args)?,
        ..ExploreOptions::default()
    };
    let (points, stats) = explore_with_stats(&designs, &layer, &opts);
    let front = pareto_front(&points);
    if args.flag("json") {
        let mut out = serde_json::json!({
            "evaluated": points.len(),
            "pareto": front.iter().map(|&i| &points[i]).collect::<Vec<_>>(),
        });
        if args.flag("stats") {
            if let serde_json::Value::Object(fields) = &mut out {
                fields.push(("stats".to_string(), serde_json::to_value(&stats)?));
            }
        }
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        if args.flag("stats") {
            println!(
                "stats: {} orderings generated, {} evaluated, {} pruned, {} prefix reuses, \
                 {} batch lanes, {:.1} ms",
                stats.search.generated,
                stats.search.evaluated,
                stats.search.pruned,
                stats.search.cache_hits,
                stats.search.batch_lanes,
                stats.wall_ms
            );
        }
        println!(
            "{} evaluated, {} on the Pareto front:",
            points.len(),
            front.len()
        );
        for &i in &front {
            let p = &points[i];
            println!(
                "  {:>2}x{:<2} wReg{} iReg{} oReg{} wLB{:>2}K iLB{:>2}K  {:>10.0} cc  {:>7.3} mm2",
                p.params.array_side,
                p.params.array_side,
                p.params.w_reg_words,
                p.params.i_reg_words,
                p.params.o_reg_words,
                p.params.w_lb_kb,
                p.params.i_lb_kb,
                p.latency,
                p.area_mm2
            );
        }
    }
    Ok(())
}

/// Resolves `--net`/`--file` into a layer list. Built-ins: `handtracking`
/// (default), `mobilenet`, `resnet18`, `alexnet`; `--file <path>` loads a
/// JSON network description instead. Conv/pointwise layers are Im2Col
/// lowered (the GEMM presets do not run depthwise natively; those layers
/// are skipped with a note).
fn resolve_network(args: &Args) -> Result<Vec<Layer>, UlmError> {
    let raw: Vec<Layer> = if let Some(path) = args.get("file") {
        let text = std::fs::read_to_string(path)?;
        ulm::workload::NetworkDesc::from_json(&text)?.to_layers()?
    } else {
        match args.get("net").unwrap_or("handtracking") {
            "handtracking" => return Ok(networks::handtracking_validation_layers()),
            "attention-prefill" => return Ok(networks::attention_prefill()),
            "attention-decode" => return Ok(networks::attention_decode()),
            "mobilenet" => networks::mobilenet_v1(224, 1),
            "resnet18" => networks::resnet18(224, 1),
            "alexnet" => networks::alexnet(1),
            other => {
                return Err(UlmError::config(format!(
                    "unknown --net `{other}` (handtracking|attention-prefill|\
                     attention-decode|mobilenet|resnet18|alexnet)"
                )))
            }
        }
    };
    let mut layers = Vec::new();
    for l in raw {
        match im2col(&l) {
            Ok(mm) => layers.push(mm),
            Err(e) => eprintln!("note: skipping {e}"),
        }
    }
    Ok(layers)
}

/// Parses one repeatable `--fuse layerA+layerB[+…]@MEM` spec into a
/// fused-segment descriptor; validation against the network and chip
/// happens inside the evaluator.
fn parse_fuse_spec(spec: &str) -> Result<FusedSegment, UlmError> {
    let bad = || {
        UlmError::config(format!(
            "`--fuse` must be layerA+layerB[+…]@MEM, got `{spec}`"
        ))
    };
    let (layers, pin) = spec.rsplit_once('@').ok_or_else(bad)?;
    let names: Vec<String> = layers.split('+').map(str::to_string).collect();
    if pin.is_empty() || names.iter().any(String::is_empty) {
        return Err(bad());
    }
    Ok(FusedSegment::new(names, pin))
}

/// `ulm network`: schedule a whole network end to end. `--arch` selects
/// the chip (default: the validation chip); repeatable
/// `--fuse logit+attend@LB` pins fused intermediates on chip.
pub fn network(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = if args.get("arch").is_some() || args.get("arch-file").is_some() {
        resolve_arch(args)?
    } else {
        let chip = presets::validation_chip();
        (chip.arch, SpatialUnroll::new(chip.spatial))
    };
    let overlap = if args.flag("overlap") {
        InterLayerOverlap::WeightPrefetch
    } else {
        InterLayerOverlap::None
    };
    let fusion = args
        .get_all("fuse")
        .into_iter()
        .map(parse_fuse_spec)
        .collect::<Result<Vec<_>, _>>()?;
    let layers = resolve_network(args)?;
    let report = NetworkEvaluator::new(&arch, spatial)
        .with_overlap(overlap)
        .with_mapper_options(mapper_options(args)?)
        .with_fusion(fusion)
        .evaluate(&layers)?;
    print!("{report}");
    for seg in &report.segments {
        println!(
            "  fused @{}: {} edge(s), {} bits resident",
            seg.pin_name,
            seg.edges.len(),
            seg.footprint_bits()
        );
    }
    Ok(())
}

/// Service sizing shared by `ulm batch` and `ulm serve`.
fn serve_options(args: &Args) -> Result<ulm::serve::ServeOptions, ArgError> {
    let defaults = ulm::serve::ServeOptions::default();
    Ok(ulm::serve::ServeOptions {
        parallelism: match args.u64_or("parallelism", 0)? {
            0 => None,
            n => Some(n as usize),
        },
        cache_capacity: args.u64_or("cache-capacity", 4096)? as usize,
        queue_capacity: None,
        cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
        include_timing: !args.flag("no-timing"),
        max_line_len: args.u64_or("max-line-len", defaults.max_line_len as u64)? as usize,
    })
}

/// `--key <ms>` as an optional duration: 0 or absent disables it.
fn timeout_option(args: &Args, key: &str) -> Result<Option<std::time::Duration>, ArgError> {
    Ok(match args.u64_or(key, 0)? {
        0 => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    })
}

/// `ulm batch`: answer NDJSON evaluation requests from stdin on stdout,
/// through the worker pool and the content-addressed result cache.
pub fn batch(args: &Args) -> Result<(), UlmError> {
    let service = ulm::serve::EvalService::open(serve_options(args)?)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let summary = ulm::serve::run_batch(&service, stdin.lock(), &mut out)?;
    let stats = service.cache_stats();
    eprintln!(
        "batch: {} requests ({} errors), cache {} hits / {} misses ({:.0}% hit rate)",
        summary.requests,
        summary.errors,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    Ok(())
}

/// `ulm serve`: the same NDJSON protocol over TCP, one line per request.
/// With `--reactor`, one epoll event loop multiplexes every connection
/// instead of a thread per connection.
pub fn serve(args: &Args) -> Result<(), UlmError> {
    let port = args.u64_or("port", 7878)?;
    let max_connections = args.u64_or("max-connections", 0)?;
    let service = ulm::serve::EvalService::open(serve_options(args)?)?;
    if let Some(disk) = service.disk_stats() {
        eprintln!(
            "cache log: warmed {} entries from {} records{}",
            disk.warmed,
            disk.replayed_records,
            match &disk.recovered_from {
                Some(code) => format!(" (recovered from {code})"),
                None => String::new(),
            }
        );
    }
    let listener = std::net::TcpListener::bind(("127.0.0.1", port as u16))?;
    eprintln!(
        "serving NDJSON evaluation requests on {}",
        listener.local_addr()?
    );
    if args.flag("reactor") {
        let defaults = ulm::reactor::ReactorOptions::default();
        let opts = ulm::reactor::ReactorOptions {
            max_connections: match max_connections {
                0 => defaults.max_connections,
                n => n as usize,
            },
            idle_timeout: timeout_option(args, "idle-timeout-ms")?,
            write_timeout: timeout_option(args, "write-timeout-ms")?,
            drain_timeout: timeout_option(args, "drain-timeout-ms")?
                .unwrap_or(defaults.drain_timeout),
            shutdown_on_stdin_close: args.flag("shutdown-on-stdin-close"),
            ..defaults
        };
        let summary = ulm::serve::run_reactor(&service, listener, opts)?;
        eprintln!(
            "reactor done: {} connections, {} requests, {} responses, \
             {} idle-closed, {} write-timeout, {} over-capacity, {} oversized, drained={}",
            summary.accepted,
            summary.requests,
            summary.responses,
            summary.closed_idle,
            summary.closed_write_timeout,
            summary.rejected_over_capacity,
            summary.oversized_lines,
            summary.drained_cleanly,
        );
    } else {
        // In the threaded path, `--max-connections` keeps its historical
        // meaning: stop after accepting n connections (0 = unlimited).
        let limit = match max_connections {
            0 => None,
            n => Some(n as usize),
        };
        ulm::serve::run_tcp(&service, listener, limit)?;
    }
    Ok(())
}

/// `ulm cache`: offline snapshot workflow for the durable result log —
/// `export` writes a compacted snapshot, `import` merges one into a cache
/// directory, `info` describes a log without touching it.
pub fn cache(args: &Args) -> Result<(), UlmError> {
    use ulm::serve::store::{read_log, write_log};
    let dir = || -> Result<std::path::PathBuf, UlmError> {
        args.get("cache-dir")
            .map(std::path::PathBuf::from)
            .ok_or_else(|| UlmError::config("ulm cache needs --cache-dir <dir>"))
    };
    let log_path = |dir: &std::path::Path| dir.join(ulm::serve::CACHE_LOG_FILE);
    match args.subcommand.as_deref() {
        Some("export") => {
            let out = args
                .get("out")
                .ok_or_else(|| UlmError::config("cache export needs --out <file>"))?;
            let (entries, report) = read_log(&log_path(&dir()?))?;
            if let Some(damage) = &report.corruption {
                eprintln!("warning: exporting valid prefix only ({damage})");
            }
            write_log(std::path::Path::new(out), &entries)?;
            println!(
                "exported {} entries ({} records read) to {out}",
                entries.len(),
                report.records
            );
        }
        Some("import") => {
            let from = args
                .get("from")
                .ok_or_else(|| UlmError::config("cache import needs --from <file>"))?;
            let (imported, report) = read_log(std::path::Path::new(from))?;
            if let Some(damage) = report.corruption {
                // Refuse damaged imports: a snapshot is supposed to be a
                // compacted, pristine file — damage means a bad copy.
                return Err(damage);
            }
            let target = log_path(&dir()?);
            let mut merged: std::collections::BTreeMap<u128, Vec<u8>> = match read_log(&target) {
                Ok((existing, _)) => existing.into_iter().collect(),
                // Absent target: start empty. A present-but-unreadable
                // target is a real error.
                Err(UlmError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    std::collections::BTreeMap::new()
                }
                Err(e) => return Err(e),
            };
            let before = merged.len();
            for (fp, payload) in imported {
                merged.insert(fp, payload);
            }
            let entries: Vec<(u128, Vec<u8>)> = merged.into_iter().collect();
            if let Some(parent) = target.parent() {
                std::fs::create_dir_all(parent)?;
            }
            write_log(&target, &entries)?;
            println!(
                "imported {} new entries ({} total) into {}",
                entries.len() - before,
                entries.len(),
                target.display()
            );
        }
        Some("info") => {
            let path = log_path(&dir()?);
            let bytes = std::fs::metadata(&path)?.len();
            let (entries, report) = read_log(&path)?;
            println!(
                "{}: {} bytes, {} records, {} distinct entries{}",
                path.display(),
                bytes,
                report.records,
                entries.len(),
                match &report.corruption {
                    Some(damage) =>
                        format!(", DAMAGED past byte {} ({damage})", report.valid_bytes),
                    None => ", clean".to_string(),
                }
            );
        }
        other => {
            return Err(UlmError::config(format!(
                "unknown cache action `{}` (export|import|info)",
                other.unwrap_or("<none>")
            )))
        }
    }
    Ok(())
}

/// `ulm help`.
pub fn help() {
    println!(
        "ulm — uniform latency model for DNN accelerators (DATE 2022 reproduction)

USAGE: ulm <command> [options]

COMMANDS
  evaluate   map one layer for lowest latency and print the full report
  whatif     re-evaluate the best mapping under --set knob overrides,
             incrementally, and report latency/energy deltas
  search     explore the mapping space (--objective latency|energy|edp, --all)
  validate   model vs discrete-event simulator on the hand-tracking layers
  dse        architecture design-space exploration with a Pareto front
  network    schedule a network end to end (--overlap, --fuse, --net)
  batch      answer NDJSON eval/search/stats requests from stdin on stdout
  serve      the same NDJSON protocol over TCP (--port, default 7878)
  cache      durable result log tools: cache export|import|info
  help       this text

COMMON OPTIONS
  --arch case16|case32|case64|validation|toy|fusion   (default case16)
  --arch-file <path.json>                      load a JSON architecture
  --gb-bw <bits/cycle>                         (default 128)
  --layer BxKxC                                (e.g. 64x96x640)
  --precision int8_out24|int8_acc24
  --samples <n>  --max-exhaustive <n>
  --threads <n>         search/dse worker threads (0 = serial)
  --map-threads <n>     dse: threads within each design's mapping search
  --batch-lanes <n>     search/dse: SoA lanes in the batched ordering
                        kernel (0 = default; results identical at every n)
  --stats               search/dse: print pruning/search statistics
  --sides 16,32,64      (dse)
  --layers <n>          (validate: limit layer count)
  --net handtracking|attention-prefill|attention-decode|mobilenet|
        resnet18|alexnet                        (network)
  --file <path.json>    (network: load a JSON network description)
  --fuse l1+l2[+…]@MEM  network: fuse consecutive layers depth-first,
                        pinning intermediates in MEM (repeatable)
  --set mem.<name>.<knob>=<value>   whatif: override size|bw|read_bw|write_bw
                        (value `2x`-style scale or absolute; repeatable)
  --verify              whatif: check the incremental result against a
                        cold evaluation of the modified design
  --json                machine-readable output
  --bw-unaware          use the stall-ignoring baseline model
  --overlap             weight-prefetch overlap (network)
  --parallelism <n>     worker threads (batch/serve; 0 = all cores)
  --cache-capacity <n>  cached results (batch/serve; default 4096)
  --port <n>            TCP port (serve; default 7878)
  --max-connections <n> threaded serve: stop after n connections (0 = unlimited)
                        reactor serve: concurrent-connection ceiling
  --cache-dir <dir>     batch/serve: persist results to <dir>/results.ulmlog
                        and warm the cache from it on startup
  --max-line-len <n>    request line length limit in bytes (default 1 MiB)
  --no-timing           omit elapsed_ms from responses (deterministic output)
  --reactor             serve: single-threaded epoll event loop (Linux)
  --idle-timeout-ms <n>     reactor: close idle connections (0 = never)
  --write-timeout-ms <n>    reactor: close slow-reading clients (0 = never)
  --drain-timeout-ms <n>    reactor: shutdown drain budget (default 10000)
  --shutdown-on-stdin-close reactor: exit cleanly when stdin reaches EOF
  --out <file>          cache export: snapshot destination
  --from <file>         cache import: snapshot to merge in"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn whatif_rejects_bad_knobs_with_namespaced_codes() {
        for (over, code) in [
            ("gb.bw=2x", "knob/unknown-path"),
            ("mem.NOPE.bw=2x", "knob/unknown-memory"),
            ("mem.GB.bw=fast", "knob/bad-value"),
            ("mem.GB.bw=0x", "knob/invalid-value"),
        ] {
            let args = parse(&["whatif", "--layer", "4x4x8", "--set", over]);
            let err = whatif(&args).expect_err(over);
            assert_eq!(err.code(), code, "{over}");
        }
        // No --set at all is a config error, not a knob error.
        let err = whatif(&parse(&["whatif", "--layer", "4x4x8"])).unwrap_err();
        assert_eq!(err.code(), "config/invalid");
    }

    #[test]
    fn whatif_verify_passes_on_a_real_override() {
        let args = parse(&[
            "whatif",
            "--layer",
            "8x16x32",
            "--max-exhaustive",
            "100",
            "--samples",
            "10",
            "--set",
            "mem.GB.bw=2x",
            "--verify",
            "--json",
        ]);
        whatif(&args).expect("incremental result must match cold evaluation");
    }
}
