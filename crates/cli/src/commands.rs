//! The `ulm` subcommands.

use crate::args::{ArgError, Args};
use ulm::prelude::*;

/// Resolves `--arch` into an architecture plus its canonical spatial
/// unrolling. Accepts `case16` (default), `case32`, `case64`,
/// `validation` and `toy`; `--gb-bw` overrides the GB bandwidth of the
/// case-study family.
fn resolve_arch(args: &Args) -> Result<(Architecture, SpatialUnroll), UlmError> {
    if let Some(path) = args.get("arch-file") {
        let text = std::fs::read_to_string(path)?;
        let (arch, spatial) = ulm::arch::ArchDesc::from_json(&text)?.build()?;
        return Ok((arch, SpatialUnroll::new(spatial)));
    }
    let gb_bw = args.u64_or("gb-bw", 128)?;
    let name = args.get("arch").unwrap_or("case16");
    let chip = match name {
        "case16" => presets::scaled_case_study_chip(16, gb_bw),
        "case32" => presets::scaled_case_study_chip(32, gb_bw),
        "case64" => presets::scaled_case_study_chip(64, gb_bw),
        "validation" => presets::validation_chip(),
        "toy" => presets::toy_chip(),
        "fusion" => presets::fusion_chip(),
        other => {
            return Err(UlmError::config(format!(
                "unknown --arch `{other}` (try case16|case32|case64|validation|toy|fusion)"
            )))
        }
    };
    Ok((chip.arch, SpatialUnroll::new(chip.spatial)))
}

fn resolve_precision(args: &Args) -> Precision {
    match args.get("precision").unwrap_or("int8_out24") {
        "int8_acc24" => Precision::int8_acc24(),
        _ => Precision::int8_out24(),
    }
}

fn resolve_layer(args: &Args) -> Result<Layer, ArgError> {
    let (b, k, c) = args.layer_dims((64, 96, 640))?;
    Ok(Layer::matmul(
        format!("({b},{k},{c})"),
        b,
        k,
        c,
        resolve_precision(args),
    ))
}

fn mapper_options(args: &Args) -> Result<MapperOptions, ArgError> {
    Ok(MapperOptions {
        max_exhaustive: args.u64_or("max-exhaustive", 3_000)? as u128,
        samples: args.u64_or("samples", 120)? as usize,
        bw_aware: !args.flag("bw-unaware"),
        ..MapperOptions::default()
    })
}

/// `--key <n>` as a thread count: 0 or absent means "serial" (`None`).
fn thread_option(args: &Args, key: &str) -> Result<Option<usize>, ArgError> {
    Ok(match args.u64_or(key, 0)? {
        0 => None,
        n => Some(n as usize),
    })
}

/// `--batch-lanes <n>`: SoA lane count for the ordering search. 0 or
/// absent keeps the mapper default; the result is identical at every
/// setting.
fn batch_lanes_option(args: &Args) -> Result<Option<usize>, ArgError> {
    thread_option(args, "batch-lanes")
}

/// `ulm evaluate`: map one layer (best-latency search) and print the full
/// latency/energy report.
pub fn evaluate(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = resolve_arch(args)?;
    let layer = resolve_layer(args)?;
    let result = Mapper::new(&arch, &layer, spatial)
        .with_options(mapper_options(args)?)
        .search(Objective::Latency)?;
    let view = MappedLayer::new(&layer, &arch, &result.best.mapping)?;
    let energy = EnergyModel::new().evaluate(&view);
    if args.flag("json") {
        let out = serde_json::json!({
            "arch": arch.name(),
            "layer": layer.name(),
            "mapping": format!("{}", result.best.mapping),
            "latency": result.best.latency,
            "energy": energy,
        });
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!("architecture: {arch}");
        println!("layer: {layer} ({} MACs)", layer.total_macs());
        println!("mapping: {}", result.best.mapping);
        print!("{}", result.best.latency);
        let rl = ulm::model::roofline(&view);
        println!(
            "roofline bound: {:.0} cc ({}-bound at {})",
            rl.bound_cycles(),
            if rl.memory_bound() {
                "memory"
            } else {
                "compute"
            },
            rl.bottleneck()
        );
        for fix in result.best.latency.bandwidth_fixes().iter().take(3) {
            println!(
                "fix: raise {} from {:.0} to {:.0} b/cy (removes {:.0} cc of stall)",
                fix.port, fix.current_bw, fix.required_bw, fix.stall
            );
        }
        print!("{energy}");
    }
    Ok(())
}

/// `ulm whatif`: evaluate a base design, apply `--set
/// mem.<name>.<knob>=<value>` architecture overrides (`size`, `bw`,
/// `read_bw`, `write_bw`; values like `2x` or absolute bits), and report
/// the latency/energy deltas. The base's best mapping is searched once
/// and re-evaluated on the modified architecture through the dirty-stage
/// delta path — only the lowering stages the overrides invalidate are
/// recomputed. With `--verify`, the incremental result is additionally
/// checked bit for bit against a cold evaluation of the modified design.
pub fn whatif(args: &Args) -> Result<(), UlmError> {
    let overrides: Vec<String> = args.get_all("set").iter().map(|s| s.to_string()).collect();
    if overrides.is_empty() {
        return Err(UlmError::config(
            "ulm whatif needs at least one --set mem.<name>.<knob>=<value>",
        ));
    }
    let (arch, spatial) = resolve_arch(args)?;
    let layer = resolve_layer(args)?;
    let mopts = mapper_options(args)?;
    let result = Mapper::new(&arch, &layer, spatial)
        .with_options(mopts)
        .with_parallelism(thread_option(args, "threads")?)
        .search(Objective::Latency)?;
    let mapping = result.best.mapping;
    let (modified, delta) = apply_overrides(&arch, &overrides)?;

    let model = if mopts.bw_aware {
        LatencyModel::new()
    } else {
        LatencyModel::bw_unaware()
    };
    let mut scratch = ModelScratch::default();
    // Prime the stage pipeline on the base design, then rebuild only what
    // the overrides dirtied.
    let base_view = MappedLayer::new(&layer, &arch, &mapping)?;
    let (base, _) = model.evaluate_delta_fast(&base_view, InputDelta::ALL, &mut scratch);
    let view = MappedLayer::new(&layer, &modified, &mapping)?;
    let (fast, rebuild) = model.evaluate_delta_fast(&view, delta, &mut scratch);
    let energy = EnergyModel::new().evaluate_lowered(&view, scratch.lowered());
    let base_energy = result.best.energy;

    let verified = if args.flag("verify") {
        let cold = model.evaluate_fast(&view, &mut ModelScratch::default());
        if cold.cc_total.to_bits() != fast.cc_total.to_bits()
            || cold.ss_overall.to_bits() != fast.ss_overall.to_bits()
            || cold.utilization.to_bits() != fast.utilization.to_bits()
            || cold.preload != fast.preload
            || cold.offload != fast.offload
        {
            return Err(UlmError::config(format!(
                "whatif verification failed: incremental cc_total {} != cold {}",
                fast.cc_total, cold.cc_total
            )));
        }
        true
    } else {
        false
    };

    if args.flag("json") {
        let mut out = serde_json::json!({
            "arch": arch.name(),
            "layer": layer.name(),
            "mapping": format!("{mapping}"),
            "set": overrides,
            "base": {
                "cc_total": base.cc_total,
                "ss_overall": base.ss_overall,
                "utilization": base.utilization,
                "energy_fj": base_energy.total_fj,
            },
            "modified": {
                "cc_total": fast.cc_total,
                "ss_overall": fast.ss_overall,
                "utilization": fast.utilization,
                "energy_fj": energy.total_fj,
            },
            "delta": {
                "cc_total": fast.cc_total - base.cc_total,
                "energy_fj": energy.total_fj - base_energy.total_fj,
                "speedup": base.cc_total / fast.cc_total,
            },
            "rebuild": {
                "stages_rebuilt": rebuild.stages_rebuilt,
                "stages_skipped": rebuild.stages_skipped,
            },
        });
        if verified {
            if let serde_json::Value::Object(fields) = &mut out {
                fields.push(("verified".to_string(), serde_json::Value::Bool(true)));
            }
        }
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!("architecture: {arch}");
        println!("layer: {layer} ({} MACs)", layer.total_macs());
        println!("mapping: {mapping}");
        for over in &overrides {
            println!("override: {over}");
        }
        println!(
            "base:     {:>12.0} cc  U {:>5.1}%  {:>10.1} nJ",
            base.cc_total,
            base.utilization * 100.0,
            base_energy.total_pj() / 1000.0
        );
        println!(
            "modified: {:>12.0} cc  U {:>5.1}%  {:>10.1} nJ",
            fast.cc_total,
            fast.utilization * 100.0,
            energy.total_pj() / 1000.0
        );
        println!(
            "delta:    {:>+12.0} cc ({:.2}x speedup)  {:>+10.1} nJ",
            fast.cc_total - base.cc_total,
            base.cc_total / fast.cc_total,
            (energy.total_fj - base_energy.total_fj) / 1e6
        );
        println!(
            "rebuild: {} stages recomputed, {} reused",
            rebuild.stages_rebuilt, rebuild.stages_skipped
        );
        if verified {
            println!("verified: incremental result bit-identical to cold evaluation");
        }
    }
    Ok(())
}

/// The model selected by `--bw-unaware`.
fn latency_model(args: &Args) -> Result<LatencyModel, ArgError> {
    Ok(if mapper_options(args)?.bw_aware {
        LatencyModel::new()
    } else {
        LatencyModel::bw_unaware()
    })
}

/// Loads a calibration JSON written by `ulm calibrate --out`.
fn load_calibration(path: &str) -> Result<Calibration, UlmError> {
    let text = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&text)?)
}

/// The matmul training ladder `ulm calibrate` simulates when no
/// measurement CSV is supplied: a spread of shapes so every port of the
/// case-study family carries traffic in at least one trace.
const CALIBRATION_TRAINING_DIMS: &[(u64, u64, u64)] =
    &[(32, 48, 160), (64, 96, 640), (48, 64, 320), (96, 128, 512)];

/// Maps one layer with the best-latency search and returns its view
/// ingredients (the mapping must outlive the view).
fn best_mapping(
    arch: &Architecture,
    layer: &Layer,
    spatial: &SpatialUnroll,
    mopts: MapperOptions,
) -> Result<Mapping, UlmError> {
    Ok(Mapper::new(arch, layer, spatial.clone())
        .with_options(mopts)
        .search(Objective::Latency)?
        .best
        .mapping)
}

/// One measurement trace: layer name, `(B, K, C)` dims and the observed
/// per-port busy rows that belong to it.
type TraceGroup = (String, (u64, u64, u64), Vec<ulm::model::ObservedBusy>);

/// `ulm calibrate`: fit per-port `RealBW` constants for one architecture
/// preset against simulator traces (default) or an imported measurement
/// CSV (`--measurements`), report per-layer residuals, and optionally
/// persist the calibration (`--out`) for `ulm surrogate --calibration`
/// and `ulm serve --calibration`.
pub fn calibrate(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = resolve_arch(args)?;
    let mopts = mapper_options(args)?;
    let precision = resolve_precision(args);
    let mut cal = Calibrator::new(&arch, latency_model(args)?);
    if let Some(path) = args.get("measurements") {
        // Imported measurements: one CSV row per (layer, port)
        // observation; consecutive rows of the same layer form one trace.
        let rows = ulm::model::parse_measurements(&std::fs::read_to_string(path)?)?;
        let mut groups: Vec<TraceGroup> = Vec::new();
        for r in rows {
            match groups.last_mut() {
                Some((name, dims, obs)) if *name == r.layer && *dims == r.dims => {
                    obs.push(r.observed)
                }
                _ => groups.push((r.layer, r.dims, vec![r.observed])),
            }
        }
        for (name, (b, k, c), obs) in &groups {
            let layer = Layer::matmul(name.clone(), *b, *k, *c, precision);
            let mapping = best_mapping(&arch, &layer, &spatial, mopts)?;
            let view = MappedLayer::new(&layer, &arch, &mapping)?;
            cal.add_trace(&view, obs)?;
        }
    } else {
        // Simulator traces: map each training layer, execute it in the
        // discrete-event simulator, and feed the observed per-port busy
        // cycles to the fit.
        let sim = Simulator::new();
        for &(b, k, c) in CALIBRATION_TRAINING_DIMS {
            let layer = Layer::matmul(format!("train-{b}x{k}x{c}"), b, k, c, precision);
            let mapping = best_mapping(&arch, &layer, &spatial, mopts)?;
            let view = MappedLayer::new(&layer, &arch, &mapping)?;
            let report = sim.simulate(&view)?;
            let h = arch.hierarchy();
            let observed: Vec<ulm::model::ObservedBusy> = report
                .ports
                .iter()
                .map(|p| ulm::model::ObservedBusy {
                    mem: h.mem(p.mem).name().to_string(),
                    port: p.port,
                    busy_cycles: p.busy_cycles,
                })
                .collect();
            cal.add_trace(&view, &observed)?;
        }
    }
    let fit = cal.fit()?;

    let verified = if args.flag("verify") {
        // The applied architecture must carry exactly the fitted
        // constants — this is the contract that lets the calibration
        // feed the generic model and the surrogate identically.
        let (calibrated, _delta) = fit.calibration.apply(&arch)?;
        let h = calibrated.hierarchy();
        for p in &fit.calibration.ports {
            let mid = h.find(&p.mem).ok_or_else(|| {
                UlmError::config(format!("calibrated arch lost memory `{}`", p.mem))
            })?;
            let got = h.mem(mid).ports()[p.port].bw_bits;
            if got != p.bw_bits {
                return Err(UlmError::config(format!(
                    "calibration verify failed: {}.port{} applied {} b/cy != fitted {}",
                    p.mem, p.port, got, p.bw_bits
                )));
            }
        }
        true
    } else {
        false
    };

    if let Some(out) = args.get("out") {
        std::fs::write(out, serde_json::to_string_pretty(&fit.calibration)?)?;
    }

    let mean_abs = if fit.residuals.is_empty() {
        0.0
    } else {
        fit.residuals.iter().map(|r| r.error_pct.abs()).sum::<f64>() / fit.residuals.len() as f64
    };
    if args.flag("json") {
        let mut out = serde_json::json!({
            "arch": arch.name(),
            "calibration": fit.calibration,
            "residuals": fit.residuals,
            "mean_abs_error_pct": mean_abs,
        });
        if verified {
            if let serde_json::Value::Object(fields) = &mut out {
                fields.push(("verified".to_string(), serde_json::Value::Bool(true)));
            }
        }
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!("architecture: {arch}");
        println!("calibration: {}", fit.calibration.id);
        for p in &fit.calibration.ports {
            println!(
                "  {}.port{}: {} -> {} b/cy ({} samples)",
                p.mem, p.port, p.old_bw_bits, p.bw_bits, p.samples
            );
        }
        for r in &fit.residuals {
            println!(
                "  {:<20} observed {:>12.1}  predicted {:>12.1}  err {:>+7.2}%",
                r.layer, r.observed, r.predicted, r.error_pct
            );
        }
        println!("mean |residual|: {mean_abs:.2}%");
        if verified {
            println!("verified: applied architecture carries the fitted constants");
        }
        if let Some(out) = args.get("out") {
            println!("wrote calibration to {out}");
        }
    }
    Ok(())
}

/// `ulm surrogate`: specialize the model once for `(architecture,
/// mapping shape)` — the shape comes from a one-time best-latency search
/// on the `--layer` template — then answer a workload-dimension sweep
/// through the partial-evaluation fast path. `--verify` checks every
/// point bit for bit against the generic pipeline; `--calibration`
/// applies fitted constants first so both paths use them.
pub fn surrogate(args: &Args) -> Result<(), UlmError> {
    let (mut arch, spatial) = resolve_arch(args)?;
    let mut calibration_id = None;
    if let Some(path) = args.get("calibration") {
        let cal = load_calibration(path)?;
        let (applied, _) = cal.apply(&arch)?;
        arch = applied;
        calibration_id = Some(cal.id);
    }
    let template = resolve_layer(args)?;
    let mopts = mapper_options(args)?;
    let mapping = best_mapping(&arch, &template, &spatial, mopts)?;
    let shape = MappingShape::from_mapping(&mapping)?;
    let mut spec = SpecializedModel::prepare(latency_model(args)?, &arch, &template, shape)?;

    let (tb, tk, tc) = args.layer_dims((64, 96, 640))?;
    let bs = args.u64_list_or("b-list", &[16, 32, 64, 128, 256])?;
    let ks = args.u64_list_or("k-list", &[tk])?;
    let cs = args.u64_list_or("c-list", &[tc])?;
    let _ = tb;
    let verify = args.flag("verify");

    let mut rows = Vec::new();
    let mut query_time = std::time::Duration::ZERO;
    let mut verified_points = 0usize;
    for &b in &bs {
        for &k in &ks {
            for &c in &cs {
                let t0 = std::time::Instant::now();
                let fast = spec.query(b, k, c)?;
                query_time += t0.elapsed();
                if verify {
                    let cold = spec.query_oracle(b, k, c)?;
                    if cold.cc_total.to_bits() != fast.cc_total.to_bits()
                        || cold.ss_overall.to_bits() != fast.ss_overall.to_bits()
                        || cold.utilization.to_bits() != fast.utilization.to_bits()
                        || cold.preload != fast.preload
                        || cold.offload != fast.offload
                    {
                        return Err(UlmError::config(format!(
                            "surrogate verification failed at {b}x{k}x{c}: \
                             specialized cc_total {} != generic {}",
                            fast.cc_total, cold.cc_total
                        )));
                    }
                    verified_points += 1;
                }
                rows.push((b, k, c, fast));
            }
        }
    }
    let stats = spec.stats();
    let points_per_sec = if query_time.as_secs_f64() > 0.0 {
        rows.len() as f64 / query_time.as_secs_f64()
    } else {
        f64::INFINITY
    };

    if args.flag("json") {
        let mut out = serde_json::json!({
            "arch": arch.name(),
            "template": template.name(),
            "shape": format!("{}", spec.shape()),
            "points": rows.iter().map(|(b, k, c, l)| serde_json::json!({
                "layer": format!("{b}x{k}x{c}"),
                "cc_total": l.cc_total,
                "ss_overall": l.ss_overall,
                "utilization": l.utilization,
            })).collect::<Vec<_>>(),
            "queries": stats.queries,
            "grouping_reused": stats.grouping_reused,
            "grouping_rebuilt": stats.grouping_rebuilt,
            "points_per_sec": points_per_sec,
        });
        if let serde_json::Value::Object(fields) = &mut out {
            if let Some(id) = &calibration_id {
                fields.push(("calibration_id".to_string(), serde_json::json!(id)));
            }
            if verify {
                fields.push((
                    "verified_points".to_string(),
                    serde_json::json!(verified_points),
                ));
            }
        }
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!("architecture: {arch}");
        println!("specialized for: {}", spec.shape());
        if let Some(id) = &calibration_id {
            println!("calibration: {id}");
        }
        for (b, k, c, l) in &rows {
            println!(
                "  {b:>5}x{k:<5}x{c:<5} {:>12.0} cc  U {:>5.1}%  stall {:>10.0}",
                l.cc_total,
                l.utilization * 100.0,
                l.ss_overall
            );
        }
        println!(
            "{} queries, grouping reused {} / rebuilt {}, {:.0} points/s",
            stats.queries, stats.grouping_reused, stats.grouping_rebuilt, points_per_sec
        );
        if verify {
            println!("verified: {verified_points} points bit-identical to the generic pipeline");
        }
    }
    Ok(())
}

/// `ulm search`: explore the mapping space under an objective and print
/// the best mapping (or the `--all` top list).
pub fn search(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = resolve_arch(args)?;
    let layer = resolve_layer(args)?;
    let objective = match args.get("objective").unwrap_or("latency") {
        "energy" => Objective::Energy,
        "edp" => Objective::Edp,
        _ => Objective::Latency,
    };
    let mapper = Mapper::new(&arch, &layer, spatial)
        .with_options(mapper_options(args)?)
        .with_parallelism(thread_option(args, "threads")?)
        .with_batch_lanes(batch_lanes_option(args)?);
    println!(
        "space: {} orderings ({} factors)",
        mapper.space_size(),
        mapper.factors().len()
    );
    if args.flag("all") {
        let mut all = mapper.enumerate_all()?;
        all.sort_by(|a, b| a.score(objective).total_cmp(&b.score(objective)));
        for em in all.iter().take(args.u64_or("top", 10)? as usize) {
            println!(
                "  {:>12.0} cc  {:>10.1} nJ  U {:>5.1}%  {}",
                em.latency.cc_total,
                em.energy.total_pj() / 1000.0,
                em.latency.utilization * 100.0,
                em.mapping
            );
        }
    } else {
        let r = mapper.search(objective)?;
        println!(
            "evaluated {} of {} generated ({})",
            r.stats.evaluated,
            r.stats.generated,
            if r.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            }
        );
        if args.flag("stats") {
            println!(
                "stats: {} pruned, {} prefix reuses, {} batch lanes, {:.2} ms",
                r.stats.pruned, r.stats.cache_hits, r.stats.batch_lanes, r.wall_ms
            );
        }
        println!("best mapping: {}", r.best.mapping);
        print!("{}", r.best.latency);
        println!("energy: {:.1} nJ", r.best.energy.total_pj() / 1000.0);
    }
    Ok(())
}

/// `ulm validate`: model vs discrete-event simulator on the hand-tracking
/// layers (the Fig. 5c experiment).
pub fn validate(args: &Args) -> Result<(), UlmError> {
    let chip = presets::validation_chip();
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let limit = args.u64_or("layers", u64::MAX)? as usize;
    let layers = networks::handtracking_validation_layers();
    let mut rows = Vec::new();
    let mut acc_sum = 0.0;
    for layer in layers.iter().take(limit) {
        let best = Mapper::new(&chip.arch, layer, spatial.clone())
            .with_options(mapper_options(args)?)
            .search(Objective::Latency)?
            .best;
        let view = MappedLayer::new(layer, &chip.arch, &best.mapping)?;
        let sim = Simulator::new().simulate(&view)?;
        let acc = (1.0
            - (best.latency.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64)
            * 100.0;
        acc_sum += acc;
        rows.push((
            layer.name().to_string(),
            best.latency.cc_total,
            sim.total_cycles,
            acc,
        ));
    }
    if args.flag("json") {
        let out = serde_json::json!({
            "layers": rows.iter().map(|(n, m, s, a)| serde_json::json!({
                "layer": n, "model_cc": m, "sim_cc": s, "accuracy_pct": a
            })).collect::<Vec<_>>(),
            "mean_accuracy_pct": acc_sum / rows.len() as f64,
        });
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        for (n, m, s, a) in &rows {
            println!("{n:<24} model {m:>10.0}  sim {s:>10}  acc {a:>5.1}%");
        }
        println!("mean accuracy: {:.1}%", acc_sum / rows.len() as f64);
    }
    Ok(())
}

/// `ulm dse`: architecture design-space exploration with a Pareto front.
pub fn dse(args: &Args) -> Result<(), UlmError> {
    let gb_bw = args.u64_or("gb-bw", 128)?;
    if gb_bw == 0 {
        return Err(UlmError::config("--gb-bw must be positive"));
    }
    let sides = args.u64_list_or("sides", &[16, 32, 64])?;
    if let Some(bad) = sides.iter().find(|&&s| s < 2 || s % 2 != 0) {
        return Err(UlmError::config(format!(
            "--sides values must be even and >= 2, got {bad}"
        )));
    }
    let (b, k, c) = args.layer_dims((256, 256, 64))?;
    let layer = Layer::matmul(format!("({b},{k},{c})"), b, k, c, Precision::int8_out24());
    let pool = MemoryPool::default();
    let designs = enumerate_designs(&pool, &sides, gb_bw);
    println!("exploring {} designs at GB {gb_bw} b/cy …", designs.len());
    let opts = ExploreOptions {
        parallelism: thread_option(args, "threads")?,
        mapping_parallelism: thread_option(args, "map-threads")?,
        batch_lanes: batch_lanes_option(args)?,
        ..ExploreOptions::default()
    };
    let (points, stats) = explore_with_stats(&designs, &layer, &opts);
    let front = pareto_front(&points);
    if args.flag("json") {
        let mut out = serde_json::json!({
            "evaluated": points.len(),
            "pareto": front.iter().map(|&i| &points[i]).collect::<Vec<_>>(),
        });
        if args.flag("stats") {
            if let serde_json::Value::Object(fields) = &mut out {
                fields.push(("stats".to_string(), serde_json::to_value(&stats)?));
            }
        }
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        if args.flag("stats") {
            println!(
                "stats: {} orderings generated, {} evaluated, {} pruned, {} prefix reuses, \
                 {} batch lanes, {:.1} ms",
                stats.search.generated,
                stats.search.evaluated,
                stats.search.pruned,
                stats.search.cache_hits,
                stats.search.batch_lanes,
                stats.wall_ms
            );
        }
        println!(
            "{} evaluated, {} on the Pareto front:",
            points.len(),
            front.len()
        );
        for &i in &front {
            let p = &points[i];
            println!(
                "  {:>2}x{:<2} wReg{} iReg{} oReg{} wLB{:>2}K iLB{:>2}K  {:>10.0} cc  {:>7.3} mm2",
                p.params.array_side,
                p.params.array_side,
                p.params.w_reg_words,
                p.params.i_reg_words,
                p.params.o_reg_words,
                p.params.w_lb_kb,
                p.params.i_lb_kb,
                p.latency,
                p.area_mm2
            );
        }
    }
    Ok(())
}

/// Resolves `--net`/`--file` into a layer list. Built-ins: `handtracking`
/// (default), `mobilenet`, `resnet18`, `alexnet`; `--file <path>` loads a
/// JSON network description instead. Conv/pointwise layers are Im2Col
/// lowered (the GEMM presets do not run depthwise natively; those layers
/// are skipped with a note).
fn resolve_network(args: &Args) -> Result<Vec<Layer>, UlmError> {
    let raw: Vec<Layer> = if let Some(path) = args.get("file") {
        let text = std::fs::read_to_string(path)?;
        ulm::workload::NetworkDesc::from_json(&text)?.to_layers()?
    } else {
        match args.get("net").unwrap_or("handtracking") {
            "handtracking" => return Ok(networks::handtracking_validation_layers()),
            "attention-prefill" => return Ok(networks::attention_prefill()),
            "attention-decode" => return Ok(networks::attention_decode()),
            "mobilenet" => networks::mobilenet_v1(224, 1),
            "resnet18" => networks::resnet18(224, 1),
            "alexnet" => networks::alexnet(1),
            other => {
                return Err(UlmError::config(format!(
                    "unknown --net `{other}` (handtracking|attention-prefill|\
                     attention-decode|mobilenet|resnet18|alexnet)"
                )))
            }
        }
    };
    let mut layers = Vec::new();
    for l in raw {
        match im2col(&l) {
            Ok(mm) => layers.push(mm),
            Err(e) => eprintln!("note: skipping {e}"),
        }
    }
    Ok(layers)
}

/// Parses one repeatable `--fuse layerA+layerB[+…]@MEM` spec into a
/// fused-segment descriptor; validation against the network and chip
/// happens inside the evaluator.
fn parse_fuse_spec(spec: &str) -> Result<FusedSegment, UlmError> {
    let bad = || {
        UlmError::config(format!(
            "`--fuse` must be layerA+layerB[+…]@MEM, got `{spec}`"
        ))
    };
    let (layers, pin) = spec.rsplit_once('@').ok_or_else(bad)?;
    let names: Vec<String> = layers.split('+').map(str::to_string).collect();
    if pin.is_empty() || names.iter().any(String::is_empty) {
        return Err(bad());
    }
    Ok(FusedSegment::new(names, pin))
}

/// `ulm network`: schedule a whole network end to end. `--arch` selects
/// the chip (default: the validation chip); repeatable
/// `--fuse logit+attend@LB` pins fused intermediates on chip.
pub fn network(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = if args.get("arch").is_some() || args.get("arch-file").is_some() {
        resolve_arch(args)?
    } else {
        let chip = presets::validation_chip();
        (chip.arch, SpatialUnroll::new(chip.spatial))
    };
    let overlap = if args.flag("overlap") {
        InterLayerOverlap::WeightPrefetch
    } else {
        InterLayerOverlap::None
    };
    let fusion = args
        .get_all("fuse")
        .into_iter()
        .map(parse_fuse_spec)
        .collect::<Result<Vec<_>, _>>()?;
    let layers = resolve_network(args)?;
    let report = NetworkEvaluator::new(&arch, spatial)
        .with_overlap(overlap)
        .with_mapper_options(mapper_options(args)?)
        .with_fusion(fusion)
        .evaluate(&layers)?;
    print!("{report}");
    for seg in &report.segments {
        println!(
            "  fused @{}: {} edge(s), {} bits resident",
            seg.pin_name,
            seg.edges.len(),
            seg.footprint_bits()
        );
    }
    Ok(())
}

/// Service sizing shared by `ulm batch` and `ulm serve`. A
/// `--calibration <file>` feeds fitted constants to the service's
/// surrogate fast path (and its id into `/stats` and fingerprints).
fn serve_options(args: &Args) -> Result<ulm::serve::ServeOptions, UlmError> {
    let defaults = ulm::serve::ServeOptions::default();
    Ok(ulm::serve::ServeOptions {
        parallelism: match args.u64_or("parallelism", 0)? {
            0 => None,
            n => Some(n as usize),
        },
        cache_capacity: args.u64_or("cache-capacity", 4096)? as usize,
        queue_capacity: None,
        cache_dir: args.get("cache-dir").map(std::path::PathBuf::from),
        include_timing: !args.flag("no-timing"),
        max_line_len: args.u64_or("max-line-len", defaults.max_line_len as u64)? as usize,
        calibration: match args.get("calibration") {
            Some(path) => Some(load_calibration(path)?),
            None => None,
        },
    })
}

/// `--key <ms>` as an optional duration: 0 or absent disables it.
fn timeout_option(args: &Args, key: &str) -> Result<Option<std::time::Duration>, ArgError> {
    Ok(match args.u64_or(key, 0)? {
        0 => None,
        ms => Some(std::time::Duration::from_millis(ms)),
    })
}

/// `ulm batch`: answer NDJSON evaluation requests from stdin on stdout,
/// through the worker pool and the content-addressed result cache.
pub fn batch(args: &Args) -> Result<(), UlmError> {
    let service = ulm::serve::EvalService::open(serve_options(args)?)?;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let summary = ulm::serve::run_batch(&service, stdin.lock(), &mut out)?;
    let stats = service.cache_stats();
    eprintln!(
        "batch: {} requests ({} errors), cache {} hits / {} misses ({:.0}% hit rate)",
        summary.requests,
        summary.errors,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    Ok(())
}

/// `ulm serve`: the same NDJSON protocol over TCP, one line per request.
/// With `--reactor`, one epoll event loop multiplexes every connection
/// instead of a thread per connection.
pub fn serve(args: &Args) -> Result<(), UlmError> {
    let port = args.u64_or("port", 7878)?;
    let max_connections = args.u64_or("max-connections", 0)?;
    let service = ulm::serve::EvalService::open(serve_options(args)?)?;
    if let Some(disk) = service.disk_stats() {
        eprintln!(
            "cache log: warmed {} entries from {} records{}",
            disk.warmed,
            disk.replayed_records,
            match &disk.recovered_from {
                Some(code) => format!(" (recovered from {code})"),
                None => String::new(),
            }
        );
    }
    let listener = std::net::TcpListener::bind(("127.0.0.1", port as u16))?;
    eprintln!(
        "serving NDJSON evaluation requests on {}",
        listener.local_addr()?
    );
    if args.flag("reactor") {
        let defaults = ulm::reactor::ReactorOptions::default();
        let opts = ulm::reactor::ReactorOptions {
            max_connections: match max_connections {
                0 => defaults.max_connections,
                n => n as usize,
            },
            idle_timeout: timeout_option(args, "idle-timeout-ms")?,
            write_timeout: timeout_option(args, "write-timeout-ms")?,
            drain_timeout: timeout_option(args, "drain-timeout-ms")?
                .unwrap_or(defaults.drain_timeout),
            shutdown_on_stdin_close: args.flag("shutdown-on-stdin-close"),
            ..defaults
        };
        let summary = ulm::serve::run_reactor(&service, listener, opts)?;
        eprintln!(
            "reactor done: {} connections, {} requests, {} responses, \
             {} idle-closed, {} write-timeout, {} over-capacity, {} oversized, drained={}",
            summary.accepted,
            summary.requests,
            summary.responses,
            summary.closed_idle,
            summary.closed_write_timeout,
            summary.rejected_over_capacity,
            summary.oversized_lines,
            summary.drained_cleanly,
        );
    } else {
        // In the threaded path, `--max-connections` keeps its historical
        // meaning: stop after accepting n connections (0 = unlimited).
        let limit = match max_connections {
            0 => None,
            n => Some(n as usize),
        };
        ulm::serve::run_tcp(&service, listener, limit)?;
    }
    Ok(())
}

/// `ulm cache`: offline snapshot workflow for the durable result log —
/// `export` writes a compacted snapshot, `import` merges one into a cache
/// directory, `info` describes a log without touching it.
pub fn cache(args: &Args) -> Result<(), UlmError> {
    use ulm::serve::store::{read_log, write_log};
    let dir = || -> Result<std::path::PathBuf, UlmError> {
        args.get("cache-dir")
            .map(std::path::PathBuf::from)
            .ok_or_else(|| UlmError::config("ulm cache needs --cache-dir <dir>"))
    };
    let log_path = |dir: &std::path::Path| dir.join(ulm::serve::CACHE_LOG_FILE);
    match args.subcommand.as_deref() {
        Some("export") => {
            let out = args
                .get("out")
                .ok_or_else(|| UlmError::config("cache export needs --out <file>"))?;
            let (entries, report) = read_log(&log_path(&dir()?))?;
            if let Some(damage) = &report.corruption {
                eprintln!("warning: exporting valid prefix only ({damage})");
            }
            write_log(std::path::Path::new(out), &entries)?;
            println!(
                "exported {} entries ({} records read) to {out}",
                entries.len(),
                report.records
            );
        }
        Some("import") => {
            let from = args
                .get("from")
                .ok_or_else(|| UlmError::config("cache import needs --from <file>"))?;
            let (imported, report) = read_log(std::path::Path::new(from))?;
            if let Some(damage) = report.corruption {
                // Refuse damaged imports: a snapshot is supposed to be a
                // compacted, pristine file — damage means a bad copy.
                return Err(damage);
            }
            let target = log_path(&dir()?);
            let mut merged: std::collections::BTreeMap<u128, Vec<u8>> = match read_log(&target) {
                Ok((existing, _)) => existing.into_iter().collect(),
                // Absent target: start empty. A present-but-unreadable
                // target is a real error.
                Err(UlmError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    std::collections::BTreeMap::new()
                }
                Err(e) => return Err(e),
            };
            let before = merged.len();
            for (fp, payload) in imported {
                merged.insert(fp, payload);
            }
            let entries: Vec<(u128, Vec<u8>)> = merged.into_iter().collect();
            if let Some(parent) = target.parent() {
                std::fs::create_dir_all(parent)?;
            }
            write_log(&target, &entries)?;
            println!(
                "imported {} new entries ({} total) into {}",
                entries.len() - before,
                entries.len(),
                target.display()
            );
        }
        Some("info") => {
            let path = log_path(&dir()?);
            let bytes = std::fs::metadata(&path)?.len();
            let (entries, report) = read_log(&path)?;
            println!(
                "{}: {} bytes, {} records, {} distinct entries{}",
                path.display(),
                bytes,
                report.records,
                entries.len(),
                match &report.corruption {
                    Some(damage) =>
                        format!(", DAMAGED past byte {} ({damage})", report.valid_bytes),
                    None => ", clean".to_string(),
                }
            );
        }
        other => {
            return Err(UlmError::config(format!(
                "unknown cache action `{}` (export|import|info)",
                other.unwrap_or("<none>")
            )))
        }
    }
    Ok(())
}

/// `ulm help`.
pub fn help() {
    println!(
        "ulm — uniform latency model for DNN accelerators (DATE 2022 reproduction)

USAGE: ulm <command> [options]

COMMANDS
  evaluate   map one layer for lowest latency and print the full report
  whatif     re-evaluate the best mapping under --set knob overrides,
             incrementally, and report latency/energy deltas
  calibrate  fit per-port RealBW constants against simulator traces or a
             measurement CSV; report per-layer residuals (--out persists)
  surrogate  specialize the model once per (arch, mapping shape) and
             sweep workload dims through the closed-form fast path
  search     explore the mapping space (--objective latency|energy|edp, --all)
  validate   model vs discrete-event simulator on the hand-tracking layers
  dse        architecture design-space exploration with a Pareto front
  network    schedule a network end to end (--overlap, --fuse, --net)
  batch      answer NDJSON eval/search/stats requests from stdin on stdout
  serve      the same NDJSON protocol over TCP (--port, default 7878)
  cache      durable result log tools: cache export|import|info
  help       this text

COMMON OPTIONS
  --arch case16|case32|case64|validation|toy|fusion   (default case16)
  --arch-file <path.json>                      load a JSON architecture
  --gb-bw <bits/cycle>                         (default 128)
  --layer BxKxC                                (e.g. 64x96x640)
  --precision int8_out24|int8_acc24
  --samples <n>  --max-exhaustive <n>
  --threads <n>         search/dse worker threads (0 = serial)
  --map-threads <n>     dse: threads within each design's mapping search
  --batch-lanes <n>     search/dse: SoA lanes in the batched ordering
                        kernel (0 = default; results identical at every n)
  --stats               search/dse: print pruning/search statistics
  --sides 16,32,64      (dse)
  --layers <n>          (validate: limit layer count)
  --net handtracking|attention-prefill|attention-decode|mobilenet|
        resnet18|alexnet                        (network)
  --file <path.json>    (network: load a JSON network description)
  --fuse l1+l2[+…]@MEM  network: fuse consecutive layers depth-first,
                        pinning intermediates in MEM (repeatable)
  --set mem.<name>.<knob>=<value>   whatif: override size|bw|read_bw|write_bw
                        (value `2x`-style scale or absolute; repeatable)
  --verify              whatif: check the incremental result against a
                        cold evaluation of the modified design
                        calibrate: check the applied arch carries the fit
                        surrogate: check every point against the generic
                        pipeline, bit for bit
  --measurements <csv>  calibrate: import layer,b,k,c,mem,port,busy_cycles
                        rows instead of simulating the training ladder
  --out <file>          calibrate: persist the fitted calibration JSON
  --calibration <file>  surrogate/serve: apply a persisted calibration
  --b-list/--k-list/--c-list <n,…>   surrogate: workload sweep grid
                        (defaults: b 16,32,64,128,256; k,c from --layer)
  --json                machine-readable output
  --bw-unaware          use the stall-ignoring baseline model
  --overlap             weight-prefetch overlap (network)
  --parallelism <n>     worker threads (batch/serve; 0 = all cores)
  --cache-capacity <n>  cached results (batch/serve; default 4096)
  --port <n>            TCP port (serve; default 7878)
  --max-connections <n> threaded serve: stop after n connections (0 = unlimited)
                        reactor serve: concurrent-connection ceiling
  --cache-dir <dir>     batch/serve: persist results to <dir>/results.ulmlog
                        and warm the cache from it on startup
  --max-line-len <n>    request line length limit in bytes (default 1 MiB)
  --no-timing           omit elapsed_ms from responses (deterministic output)
  --reactor             serve: single-threaded epoll event loop (Linux)
  --idle-timeout-ms <n>     reactor: close idle connections (0 = never)
  --write-timeout-ms <n>    reactor: close slow-reading clients (0 = never)
  --drain-timeout-ms <n>    reactor: shutdown drain budget (default 10000)
  --shutdown-on-stdin-close reactor: exit cleanly when stdin reaches EOF
  --out <file>          cache export: snapshot destination
  --from <file>         cache import: snapshot to merge in"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn whatif_rejects_bad_knobs_with_namespaced_codes() {
        for (over, code) in [
            ("gb.bw=2x", "knob/unknown-path"),
            ("mem.NOPE.bw=2x", "knob/unknown-memory"),
            ("mem.GB.bw=fast", "knob/bad-value"),
            ("mem.GB.bw=0x", "knob/invalid-value"),
        ] {
            let args = parse(&["whatif", "--layer", "4x4x8", "--set", over]);
            let err = whatif(&args).expect_err(over);
            assert_eq!(err.code(), code, "{over}");
        }
        // No --set at all is a config error, not a knob error.
        let err = whatif(&parse(&["whatif", "--layer", "4x4x8"])).unwrap_err();
        assert_eq!(err.code(), "config/invalid");
    }

    #[test]
    fn whatif_verify_passes_on_a_real_override() {
        let args = parse(&[
            "whatif",
            "--layer",
            "8x16x32",
            "--max-exhaustive",
            "100",
            "--samples",
            "10",
            "--set",
            "mem.GB.bw=2x",
            "--verify",
            "--json",
        ]);
        whatif(&args).expect("incremental result must match cold evaluation");
    }
}
