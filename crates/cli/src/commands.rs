//! The `ulm` subcommands.

use crate::args::{ArgError, Args};
use ulm::prelude::*;

/// Resolves `--arch` into an architecture plus its canonical spatial
/// unrolling. Accepts `case16` (default), `case32`, `case64`,
/// `validation` and `toy`; `--gb-bw` overrides the GB bandwidth of the
/// case-study family.
fn resolve_arch(args: &Args) -> Result<(Architecture, SpatialUnroll), UlmError> {
    if let Some(path) = args.get("arch-file") {
        let text = std::fs::read_to_string(path)?;
        let (arch, spatial) = ulm::arch::ArchDesc::from_json(&text)?.build()?;
        return Ok((arch, SpatialUnroll::new(spatial)));
    }
    let gb_bw = args.u64_or("gb-bw", 128)?;
    let name = args.get("arch").unwrap_or("case16");
    let chip = match name {
        "case16" => presets::scaled_case_study_chip(16, gb_bw),
        "case32" => presets::scaled_case_study_chip(32, gb_bw),
        "case64" => presets::scaled_case_study_chip(64, gb_bw),
        "validation" => presets::validation_chip(),
        "toy" => presets::toy_chip(),
        other => {
            return Err(UlmError::config(format!(
                "unknown --arch `{other}` (try case16|case32|case64|validation|toy)"
            )))
        }
    };
    Ok((chip.arch, SpatialUnroll::new(chip.spatial)))
}

fn resolve_layer(args: &Args) -> Result<Layer, ArgError> {
    let (b, k, c) = args.layer_dims((64, 96, 640))?;
    let precision = match args.get("precision").unwrap_or("int8_out24") {
        "int8_acc24" => Precision::int8_acc24(),
        _ => Precision::int8_out24(),
    };
    Ok(Layer::matmul(format!("({b},{k},{c})"), b, k, c, precision))
}

fn mapper_options(args: &Args) -> Result<MapperOptions, ArgError> {
    Ok(MapperOptions {
        max_exhaustive: args.u64_or("max-exhaustive", 3_000)? as u128,
        samples: args.u64_or("samples", 120)? as usize,
        bw_aware: !args.flag("bw-unaware"),
        ..MapperOptions::default()
    })
}

/// `--key <n>` as a thread count: 0 or absent means "serial" (`None`).
fn thread_option(args: &Args, key: &str) -> Result<Option<usize>, ArgError> {
    Ok(match args.u64_or(key, 0)? {
        0 => None,
        n => Some(n as usize),
    })
}

/// `ulm evaluate`: map one layer (best-latency search) and print the full
/// latency/energy report.
pub fn evaluate(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = resolve_arch(args)?;
    let layer = resolve_layer(args)?;
    let result = Mapper::new(&arch, &layer, spatial)
        .with_options(mapper_options(args)?)
        .search(Objective::Latency)?;
    let view = MappedLayer::new(&layer, &arch, &result.best.mapping)?;
    let energy = EnergyModel::new().evaluate(&view);
    if args.flag("json") {
        let out = serde_json::json!({
            "arch": arch.name(),
            "layer": layer.name(),
            "mapping": format!("{}", result.best.mapping),
            "latency": result.best.latency,
            "energy": energy,
        });
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        println!("architecture: {arch}");
        println!("layer: {layer} ({} MACs)", layer.total_macs());
        println!("mapping: {}", result.best.mapping);
        print!("{}", result.best.latency);
        let rl = ulm::model::roofline(&view);
        println!(
            "roofline bound: {:.0} cc ({}-bound at {})",
            rl.bound_cycles(),
            if rl.memory_bound() {
                "memory"
            } else {
                "compute"
            },
            rl.bottleneck()
        );
        for fix in result.best.latency.bandwidth_fixes().iter().take(3) {
            println!(
                "fix: raise {} from {:.0} to {:.0} b/cy (removes {:.0} cc of stall)",
                fix.port, fix.current_bw, fix.required_bw, fix.stall
            );
        }
        print!("{energy}");
    }
    Ok(())
}

/// `ulm search`: explore the mapping space under an objective and print
/// the best mapping (or the `--all` top list).
pub fn search(args: &Args) -> Result<(), UlmError> {
    let (arch, spatial) = resolve_arch(args)?;
    let layer = resolve_layer(args)?;
    let objective = match args.get("objective").unwrap_or("latency") {
        "energy" => Objective::Energy,
        "edp" => Objective::Edp,
        _ => Objective::Latency,
    };
    let mapper = Mapper::new(&arch, &layer, spatial)
        .with_options(mapper_options(args)?)
        .with_parallelism(thread_option(args, "threads")?);
    println!(
        "space: {} orderings ({} factors)",
        mapper.space_size(),
        mapper.factors().len()
    );
    if args.flag("all") {
        let mut all = mapper.enumerate_all()?;
        all.sort_by(|a, b| a.score(objective).total_cmp(&b.score(objective)));
        for em in all.iter().take(args.u64_or("top", 10)? as usize) {
            println!(
                "  {:>12.0} cc  {:>10.1} nJ  U {:>5.1}%  {}",
                em.latency.cc_total,
                em.energy.total_pj() / 1000.0,
                em.latency.utilization * 100.0,
                em.mapping
            );
        }
    } else {
        let r = mapper.search(objective)?;
        println!(
            "evaluated {} of {} generated ({})",
            r.evaluated,
            r.generated,
            if r.exhaustive {
                "exhaustive"
            } else {
                "sampled"
            }
        );
        if args.flag("stats") {
            println!(
                "stats: {} pruned, {} prefix reuses, {:.2} ms",
                r.pruned, r.cache_hits, r.wall_ms
            );
        }
        println!("best mapping: {}", r.best.mapping);
        print!("{}", r.best.latency);
        println!("energy: {:.1} nJ", r.best.energy.total_pj() / 1000.0);
    }
    Ok(())
}

/// `ulm validate`: model vs discrete-event simulator on the hand-tracking
/// layers (the Fig. 5c experiment).
pub fn validate(args: &Args) -> Result<(), UlmError> {
    let chip = presets::validation_chip();
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let limit = args.u64_or("layers", u64::MAX)? as usize;
    let layers = networks::handtracking_validation_layers();
    let mut rows = Vec::new();
    let mut acc_sum = 0.0;
    for layer in layers.iter().take(limit) {
        let best = Mapper::new(&chip.arch, layer, spatial.clone())
            .with_options(mapper_options(args)?)
            .search(Objective::Latency)?
            .best;
        let view = MappedLayer::new(layer, &chip.arch, &best.mapping)?;
        let sim = Simulator::new().simulate(&view)?;
        let acc = (1.0
            - (best.latency.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64)
            * 100.0;
        acc_sum += acc;
        rows.push((
            layer.name().to_string(),
            best.latency.cc_total,
            sim.total_cycles,
            acc,
        ));
    }
    if args.flag("json") {
        let out = serde_json::json!({
            "layers": rows.iter().map(|(n, m, s, a)| serde_json::json!({
                "layer": n, "model_cc": m, "sim_cc": s, "accuracy_pct": a
            })).collect::<Vec<_>>(),
            "mean_accuracy_pct": acc_sum / rows.len() as f64,
        });
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        for (n, m, s, a) in &rows {
            println!("{n:<24} model {m:>10.0}  sim {s:>10}  acc {a:>5.1}%");
        }
        println!("mean accuracy: {:.1}%", acc_sum / rows.len() as f64);
    }
    Ok(())
}

/// `ulm dse`: architecture design-space exploration with a Pareto front.
pub fn dse(args: &Args) -> Result<(), UlmError> {
    let gb_bw = args.u64_or("gb-bw", 128)?;
    let sides = args.u64_list_or("sides", &[16, 32, 64])?;
    let (b, k, c) = args.layer_dims((256, 256, 64))?;
    let layer = Layer::matmul(format!("({b},{k},{c})"), b, k, c, Precision::int8_out24());
    let pool = MemoryPool::default();
    let designs = enumerate_designs(&pool, &sides, gb_bw);
    println!("exploring {} designs at GB {gb_bw} b/cy …", designs.len());
    let opts = ExploreOptions {
        parallelism: thread_option(args, "threads")?,
        mapping_parallelism: thread_option(args, "map-threads")?,
        ..ExploreOptions::default()
    };
    let (points, stats) = explore_with_stats(&designs, &layer, &opts);
    let front = pareto_front(&points);
    if args.flag("json") {
        let mut out = serde_json::json!({
            "evaluated": points.len(),
            "pareto": front.iter().map(|&i| &points[i]).collect::<Vec<_>>(),
        });
        if args.flag("stats") {
            if let serde_json::Value::Object(fields) = &mut out {
                fields.push(("stats".to_string(), serde_json::to_value(&stats)?));
            }
        }
        println!("{}", serde_json::to_string_pretty(&out)?);
    } else {
        if args.flag("stats") {
            println!(
                "stats: {} orderings generated, {} evaluated, {} pruned, {} prefix reuses, {:.1} ms",
                stats.generated, stats.evaluated, stats.pruned, stats.cache_hits, stats.wall_ms
            );
        }
        println!(
            "{} evaluated, {} on the Pareto front:",
            points.len(),
            front.len()
        );
        for &i in &front {
            let p = &points[i];
            println!(
                "  {:>2}x{:<2} wReg{} iReg{} oReg{} wLB{:>2}K iLB{:>2}K  {:>10.0} cc  {:>7.3} mm2",
                p.params.array_side,
                p.params.array_side,
                p.params.w_reg_words,
                p.params.i_reg_words,
                p.params.o_reg_words,
                p.params.w_lb_kb,
                p.params.i_lb_kb,
                p.latency,
                p.area_mm2
            );
        }
    }
    Ok(())
}

/// Resolves `--net`/`--file` into a layer list. Built-ins: `handtracking`
/// (default), `mobilenet`, `resnet18`, `alexnet`; `--file <path>` loads a
/// JSON network description instead. Conv/pointwise layers are Im2Col
/// lowered (the GEMM presets do not run depthwise natively; those layers
/// are skipped with a note).
fn resolve_network(args: &Args) -> Result<Vec<Layer>, UlmError> {
    let raw: Vec<Layer> = if let Some(path) = args.get("file") {
        let text = std::fs::read_to_string(path)?;
        ulm::workload::NetworkDesc::from_json(&text)?.to_layers()?
    } else {
        match args.get("net").unwrap_or("handtracking") {
            "handtracking" => return Ok(networks::handtracking_validation_layers()),
            "mobilenet" => networks::mobilenet_v1(224, 1),
            "resnet18" => networks::resnet18(224, 1),
            "alexnet" => networks::alexnet(1),
            other => {
                return Err(UlmError::config(format!(
                    "unknown --net `{other}` (handtracking|mobilenet|resnet18|alexnet)"
                )))
            }
        }
    };
    let mut layers = Vec::new();
    for l in raw {
        match im2col(&l) {
            Ok(mm) => layers.push(mm),
            Err(e) => eprintln!("note: skipping {e}"),
        }
    }
    Ok(layers)
}

/// `ulm network`: schedule a whole network end to end.
pub fn network(args: &Args) -> Result<(), UlmError> {
    let chip = presets::validation_chip();
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let overlap = if args.flag("overlap") {
        InterLayerOverlap::WeightPrefetch
    } else {
        InterLayerOverlap::None
    };
    let layers = resolve_network(args)?;
    let report = NetworkEvaluator::new(&chip.arch, spatial)
        .with_overlap(overlap)
        .with_mapper_options(mapper_options(args)?)
        .evaluate(&layers)?;
    print!("{report}");
    Ok(())
}

/// Service sizing shared by `ulm batch` and `ulm serve`.
fn serve_options(args: &Args) -> Result<ulm::serve::ServeOptions, ArgError> {
    Ok(ulm::serve::ServeOptions {
        parallelism: match args.u64_or("parallelism", 0)? {
            0 => None,
            n => Some(n as usize),
        },
        cache_capacity: args.u64_or("cache-capacity", 4096)? as usize,
        queue_capacity: None,
    })
}

/// `ulm batch`: answer NDJSON evaluation requests from stdin on stdout,
/// through the worker pool and the content-addressed result cache.
pub fn batch(args: &Args) -> Result<(), UlmError> {
    let service = ulm::serve::EvalService::new(serve_options(args)?);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let summary = ulm::serve::run_batch(&service, stdin.lock(), &mut out)?;
    let stats = service.cache_stats();
    eprintln!(
        "batch: {} requests ({} errors), cache {} hits / {} misses ({:.0}% hit rate)",
        summary.requests,
        summary.errors,
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    Ok(())
}

/// `ulm serve`: the same NDJSON protocol over TCP, one line per request.
pub fn serve(args: &Args) -> Result<(), UlmError> {
    let port = args.u64_or("port", 7878)?;
    let max_connections = match args.u64_or("max-connections", 0)? {
        0 => None,
        n => Some(n as usize),
    };
    let service = ulm::serve::EvalService::new(serve_options(args)?);
    let listener = std::net::TcpListener::bind(("127.0.0.1", port as u16))?;
    eprintln!(
        "serving NDJSON evaluation requests on {}",
        listener.local_addr()?
    );
    ulm::serve::run_tcp(&service, listener, max_connections)?;
    Ok(())
}

/// `ulm help`.
pub fn help() {
    println!(
        "ulm — uniform latency model for DNN accelerators (DATE 2022 reproduction)

USAGE: ulm <command> [options]

COMMANDS
  evaluate   map one layer for lowest latency and print the full report
  search     explore the mapping space (--objective latency|energy|edp, --all)
  validate   model vs discrete-event simulator on the hand-tracking layers
  dse        architecture design-space exploration with a Pareto front
  network    schedule the hand-tracking network end to end (--overlap)
  batch      answer NDJSON eval/search/stats requests from stdin on stdout
  serve      the same NDJSON protocol over TCP (--port, default 7878)
  help       this text

COMMON OPTIONS
  --arch case16|case32|case64|validation|toy   (default case16)
  --arch-file <path.json>                      load a JSON architecture
  --gb-bw <bits/cycle>                         (default 128)
  --layer BxKxC                                (e.g. 64x96x640)
  --precision int8_out24|int8_acc24
  --samples <n>  --max-exhaustive <n>
  --threads <n>         search/dse worker threads (0 = serial)
  --map-threads <n>     dse: threads within each design's mapping search
  --stats               search/dse: print pruning/search statistics
  --sides 16,32,64      (dse)
  --layers <n>          (validate: limit layer count)
  --net handtracking|mobilenet|resnet18|alexnet   (network)
  --file <path.json>    (network: load a JSON network description)
  --json                machine-readable output
  --bw-unaware          use the stall-ignoring baseline model
  --overlap             weight-prefetch overlap (network)
  --parallelism <n>     worker threads (batch/serve; 0 = all cores)
  --cache-capacity <n>  cached results (batch/serve; default 4096)
  --port <n>            TCP port (serve; default 7878)
  --max-connections <n> stop after n connections (serve; 0 = unlimited)"
    );
}
