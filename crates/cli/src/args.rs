//! Minimal, dependency-free argument parsing for the `ulm` binary.

use std::collections::HashMap;
use std::fmt;

/// A parsed command line: subcommand, `--key value` options and `--flag`
/// switches.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// The nested action (second positional), only for commands that take
    /// one (`ulm cache export|import|info`).
    pub subcommand: Option<String>,
    options: HashMap<String, String>,
    /// Every `--key value` occurrence in order, for options that may
    /// repeat (`ulm whatif --set … --set …`).
    occurrences: Vec<(String, String)>,
    flags: Vec<String>,
}

/// Errors from argument handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// `--key` given without a value.
    MissingValue(String),
    /// An option's value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An unexpected positional argument.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand; try `ulm help`"),
            ArgError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgError::BadValue {
                key,
                value,
                expected,
            } => write!(f, "option --{key}={value} is not a valid {expected}"),
            ArgError::UnexpectedPositional(p) => {
                write!(f, "unexpected positional argument `{p}`")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl From<ArgError> for ulm::error::UlmError {
    fn from(e: ArgError) -> Self {
        ulm::error::UlmError::config(e.to_string())
    }
}

/// Known boolean flags (everything else with `--` expects a value).
const FLAGS: &[&str] = &[
    "json",
    "all",
    "bw-unaware",
    "overlap",
    "help",
    "stats",
    "reactor",
    "no-timing",
    "shutdown-on-stdin-close",
    "verify",
];

/// Commands that take a second positional argument (a nested action).
const WITH_SUBCOMMAND: &[&str] = &["cache"];

impl Args {
    /// Parses `argv[1..]`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a missing subcommand, a value-less option
    /// or extra positional arguments.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, ArgError> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut subcommand = None;
        let mut options = HashMap::new();
        let mut occurrences = Vec::new();
        let mut flags = Vec::new();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                // `--key=value` or `--key value` or bare flag.
                if let Some((k, v)) = key.split_once('=') {
                    options.insert(k.to_string(), v.to_string());
                    occurrences.push((k.to_string(), v.to_string()));
                } else if FLAGS.contains(&key) {
                    flags.push(key.to_string());
                } else {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError::MissingValue(key.into()))?;
                    options.insert(key.to_string(), v.clone());
                    occurrences.push((key.to_string(), v));
                }
            } else if WITH_SUBCOMMAND.contains(&command.as_str()) && subcommand.is_none() {
                subcommand = Some(tok);
            } else {
                return Err(ArgError::UnexpectedPositional(tok));
            }
        }
        Ok(Self {
            command,
            subcommand,
            options,
            occurrences,
            flags,
        })
    }

    /// True if `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Every value given for `--key`, in command-line order (for options
    /// that may repeat, like `--set`).
    pub fn get_all(&self, key: &str) -> Vec<&str> {
        self.occurrences
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Parses `--key` as `u64`, with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                key: key.into(),
                value: v.into(),
                expected: "integer",
            }),
        }
    }

    /// Parses `--key` as a comma-separated `u64` list, with a default.
    pub fn u64_list_or(&self, key: &str, default: &[u64]) -> Result<Vec<u64>, ArgError> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|p| {
                    p.trim().parse().map_err(|_| ArgError::BadValue {
                        key: key.into(),
                        value: v.into(),
                        expected: "comma-separated integers",
                    })
                })
                .collect(),
        }
    }

    /// Parses `--layer BxKxC` into the three dims.
    pub fn layer_dims(&self, default: (u64, u64, u64)) -> Result<(u64, u64, u64), ArgError> {
        match self.get("layer") {
            None => Ok(default),
            Some(v) => {
                let parts: Vec<&str> = v.split('x').collect();
                let bad = || ArgError::BadValue {
                    key: "layer".into(),
                    value: v.into(),
                    expected: "BxKxC with positive dims (e.g. 64x96x640)",
                };
                if parts.len() != 3 {
                    return Err(bad());
                }
                let b = parts[0].parse().map_err(|_| bad())?;
                let k = parts[1].parse().map_err(|_| bad())?;
                let c = parts[2].parse().map_err(|_| bad())?;
                if b == 0 || k == 0 || c == 0 {
                    return Err(bad());
                }
                Ok((b, k, c))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn full_command_line_round_trips() {
        let a = parse(&["evaluate", "--layer", "64x96x640", "--gb-bw=256", "--json"]).unwrap();
        assert_eq!(a.command, "evaluate");
        assert_eq!(a.layer_dims((1, 1, 1)).unwrap(), (64, 96, 640));
        assert_eq!(a.u64_or("gb-bw", 128).unwrap(), 256);
        assert!(a.flag("json"));
        assert!(!a.flag("all"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse(&["search"]).unwrap();
        assert_eq!(a.u64_or("gb-bw", 128).unwrap(), 128);
        assert_eq!(a.layer_dims((8, 8, 8)).unwrap(), (8, 8, 8));
        assert_eq!(a.u64_list_or("sides", &[16, 32]).unwrap(), vec![16, 32]);
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse(&["x", "--gb-bw"]).unwrap_err(),
            ArgError::MissingValue("gb-bw".into())
        );
        assert!(matches!(
            parse(&["x", "--layer", "64x96"])
                .unwrap()
                .layer_dims((1, 1, 1)),
            Err(ArgError::BadValue { .. })
        ));
        assert!(matches!(
            parse(&["x", "stray"]).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
    }

    #[test]
    fn repeated_options_keep_every_occurrence() {
        let a = parse(&[
            "whatif",
            "--set",
            "mem.GB.bw=2x",
            "--set=mem.W-LB.size=2x",
            "--verify",
        ])
        .unwrap();
        assert_eq!(a.get_all("set"), vec!["mem.GB.bw=2x", "mem.W-LB.size=2x"]);
        // `get` keeps last-wins semantics for single-valued options.
        assert_eq!(a.get("set"), Some("mem.W-LB.size=2x"));
        assert!(a.flag("verify"));
        assert!(a.get_all("missing").is_empty());
    }

    #[test]
    fn cache_takes_one_subcommand() {
        let a = parse(&[
            "cache",
            "export",
            "--cache-dir",
            "/tmp/x",
            "--out",
            "snap.ulmlog",
        ])
        .unwrap();
        assert_eq!(a.command, "cache");
        assert_eq!(a.subcommand.as_deref(), Some("export"));
        assert_eq!(a.get("cache-dir"), Some("/tmp/x"));
        // A second positional is still rejected, and other commands take
        // none at all.
        assert!(matches!(
            parse(&["cache", "export", "extra"]).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
        assert!(matches!(
            parse(&["serve", "export"]).unwrap_err(),
            ArgError::UnexpectedPositional(_)
        ));
    }

    #[test]
    fn serve_reactor_flags_parse() {
        let a = parse(&[
            "serve",
            "--reactor",
            "--no-timing",
            "--shutdown-on-stdin-close",
            "--idle-timeout-ms",
            "5000",
        ])
        .unwrap();
        assert!(a.flag("reactor"));
        assert!(a.flag("no-timing"));
        assert!(a.flag("shutdown-on-stdin-close"));
        assert_eq!(a.u64_or("idle-timeout-ms", 0).unwrap(), 5000);
    }

    #[test]
    fn list_parsing() {
        let a = parse(&["dse", "--sides", "16,32,64"]).unwrap();
        assert_eq!(a.u64_list_or("sides", &[]).unwrap(), vec![16, 32, 64]);
        let bad = parse(&["dse", "--sides", "16,x"]).unwrap();
        assert!(bad.u64_list_or("sides", &[]).is_err());
    }
}
