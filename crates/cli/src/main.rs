//! `ulm` — the command-line interface to the uniform latency model.
//!
//! ```sh
//! ulm evaluate  --arch case16 --layer 64x96x640
//! ulm whatif    --set mem.GB.bw=2x --verify
//! ulm calibrate --arch case16 --out case16.cal.json
//! ulm surrogate --b-list 16,32,64,128 --verify
//! ulm search   --objective energy --all
//! ulm validate --json
//! ulm dse      --gb-bw 1024 --sides 16,64
//! ulm network  --net attention-decode --arch fusion --fuse logit+attend@LB
//! ulm batch    < requests.ndjson
//! ulm serve    --port 7878
//! ```

mod args;
mod commands;

use args::Args;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            commands::help();
            return ExitCode::FAILURE;
        }
    };
    if args.flag("help") || args.command == "help" {
        commands::help();
        return ExitCode::SUCCESS;
    }
    let result = match args.command.as_str() {
        "evaluate" => commands::evaluate(&args),
        "whatif" => commands::whatif(&args),
        "calibrate" => commands::calibrate(&args),
        "surrogate" => commands::surrogate(&args),
        "search" => commands::search(&args),
        "validate" => commands::validate(&args),
        "dse" => commands::dse(&args),
        "network" => commands::network(&args),
        "batch" => commands::batch(&args),
        "serve" => commands::serve(&args),
        "cache" => commands::cache(&args),
        other => {
            eprintln!("error: unknown command `{other}`");
            commands::help();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error[{}]: {e}", e.code());
            ExitCode::FAILURE
        }
    }
}
