//! Shared plumbing for the experiment harnesses: aligned text tables, CSV
//! dumps under `target/experiments/`, and the canonical Case-study-1
//! mapping pair.
//!
//! Each `benches/*.rs` target regenerates one table or figure of the
//! paper; `cargo bench -p ulm-bench` runs them all and prints the rows the
//! paper reports (see `EXPERIMENTS.md` for the expected-vs-measured log).

pub mod svg;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use ulm::prelude::*;

/// An aligned text table with CSV export.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            parts.join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Writes the table as `target/experiments/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = experiments_dir();
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.headers.join(",")).expect("write csv");
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).expect("write csv");
        }
        println!("[csv] {}", path.display());
    }
}

/// `target/experiments/`, created on demand.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// The Case-study layer: `B·K·C = 9,830,400` MACs so that
/// `CC_ideal = 38,400` on the 16x16-MAC case-study chip (Fig. 6c), with
/// `K x C = 96 x 160` chosen so the whole weight tensor exactly fills the
/// 16 KB W-LB — the paper notes both mappings share the same W reuse
/// distribution, which requires weights not to stream.
pub fn case1_layer() -> Layer {
    Layer::matmul("case1", 640, 96, 160, Precision::int8_out24())
}

/// Case-study-1 Mapping B: fully output-stationary — all of O's reuse (C)
/// loops at the O-Reg level, only final outputs ever reach the GB. Its
/// cost: the I-LB block is revisited by the outer K loop, so inputs are
/// re-read from the GB 6x.
pub fn case1_mapping_b(arch: &Architecture, layer: &Layer) -> Mapping {
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let stack = LoopStack::from_pairs(&[(Dim::C, 80), (Dim::B, 80), (Dim::K, 6)]);
    Mapping::with_greedy_alloc(arch, layer, spatial, stack).expect("mapping B is legal")
}

/// Case-study-1 Mapping A: all of I's reuse (K) loops at the I-LB level —
/// inputs are fetched from the GB exactly once — at the cost of splitting
/// C (blue boxes in Fig. 6a/b) so partial sums shuttle between the O-Reg
/// and the GB.
pub fn case1_mapping_a(arch: &Architecture, layer: &Layer) -> Mapping {
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let stack = LoopStack::from_pairs(&[(Dim::C, 40), (Dim::K, 6), (Dim::B, 80), (Dim::C, 2)]);
    Mapping::with_greedy_alloc(arch, layer, spatial, stack).expect("mapping A is legal")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_layer_hits_38400_ideal_cycles() {
        let layer = case1_layer();
        assert_eq!(layer.total_macs(), 9_830_400);
        assert_eq!(layer.total_macs() / 256, 38_400);
    }

    #[test]
    fn case1_mappings_share_cc_ideal_and_differ_in_psums() {
        let arch = presets::case_study_chip(128);
        let layer = case1_layer();
        let a = case1_mapping_a(&arch, &layer);
        let b = case1_mapping_b(&arch, &layer);
        let va = MappedLayer::new(&layer, &arch, &a).unwrap();
        let vb = MappedLayer::new(&layer, &arch, &b).unwrap();
        assert_eq!(va.cc_spatial(), 38_400);
        assert_eq!(vb.cc_spatial(), 38_400);
        // B is fully output-stationary; A round-trips psums.
        assert!(vb.outputs_final_above(0));
        assert!(!va.outputs_final_above(0));
    }

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("t", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
        t.write_csv("selftest");
        let path = experiments_dir().join("selftest.csv");
        let content = std::fs::read_to_string(path).unwrap();
        assert!(content.contains("a,bb"));
        assert!(content.contains("1,2"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn row_arity_checked() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
