//! Minimal hand-rolled SVG charts so the experiment harnesses can emit
//! actual figures (`target/experiments/*.svg`) next to their CSV data:
//! grouped/stacked bar charts (Fig. 5c, Fig. 7b) and scatter plots
//! (Fig. 8). No dependencies; the output is plain SVG 1.1.

use std::fmt::Write as _;

const PALETTE: [&str; 6] = [
    "#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4", "#8c613c",
];

fn axis_font() -> &'static str {
    "font-family=\"sans-serif\" font-size=\"11\""
}

/// A bar chart: one group per x-label, one (possibly stacked) bar per
/// series within the group.
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    labels: Vec<String>,
    series: Vec<(String, Vec<f64>)>,
    stacked: bool,
    y_label: String,
}

impl BarChart {
    /// Starts a grouped bar chart.
    pub fn grouped(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            labels: Vec::new(),
            series: Vec::new(),
            stacked: false,
            y_label: y_label.into(),
        }
    }

    /// Starts a stacked bar chart.
    pub fn stacked(title: impl Into<String>, y_label: impl Into<String>) -> Self {
        Self {
            stacked: true,
            ..Self::grouped(title, y_label)
        }
    }

    /// Sets the x labels (one per group).
    pub fn labels<I: IntoIterator<Item = S>, S: Into<String>>(&mut self, labels: I) -> &mut Self {
        self.labels = labels.into_iter().map(Into::into).collect();
        self
    }

    /// Adds one series; `values` must have one entry per label.
    ///
    /// # Panics
    ///
    /// Panics if the value count disagrees with the label count.
    pub fn series(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        assert_eq!(
            values.len(),
            self.labels.len(),
            "series length must match label count"
        );
        self.series.push((name.into(), values));
        self
    }

    /// Renders the chart as an SVG document.
    pub fn render(&self) -> String {
        let (w, h) = (900.0, 420.0);
        let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 90.0);
        let plot_w = w - ml - mr;
        let plot_h = h - mt - mb;
        let groups = self.labels.len().max(1) as f64;

        let max_y = if self.stacked {
            (0..self.labels.len())
                .map(|i| self.series.iter().map(|(_, v)| v[i]).sum::<f64>())
                .fold(1.0, f64::max)
        } else {
            self.series
                .iter()
                .flat_map(|(_, v)| v.iter().copied())
                .fold(1.0, f64::max)
        };

        let mut svg = String::new();
        let _ = write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n"
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"24\" text-anchor=\"middle\" {} font-size=\"15\">{}</text>",
            w / 2.0,
            axis_font(),
            xml(&self.title)
        );
        // Axes.
        let _ = writeln!(
            svg,
            "<line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{}\" stroke=\"black\"/>",
            mt + plot_h
        );
        let _ = writeln!(
            svg,
            "<line x1=\"{ml}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\"/>",
            mt + plot_h,
            ml + plot_w,
            mt + plot_h
        );
        // Y ticks.
        for t in 0..=4 {
            let v = max_y * t as f64 / 4.0;
            let y = mt + plot_h - plot_h * t as f64 / 4.0;
            let _ = writeln!(
                svg,
                "<text x=\"{}\" y=\"{}\" text-anchor=\"end\" {}>{}</text>",
                ml - 6.0,
                y + 4.0,
                axis_font(),
                human(v)
            );
            let _ = writeln!(
                svg,
                "<line x1=\"{ml}\" y1=\"{y}\" x2=\"{}\" y2=\"{y}\" stroke=\"#ddd\"/>",
                ml + plot_w
            );
        }
        let _ = writeln!(
            svg,
            "<text x=\"16\" y=\"{}\" transform=\"rotate(-90 16 {})\" text-anchor=\"middle\" {}>{}</text>",
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            axis_font(),
            xml(&self.y_label)
        );

        // Bars.
        let group_w = plot_w / groups;
        let nseries = self.series.len().max(1) as f64;
        for (gi, label) in self.labels.iter().enumerate() {
            let gx = ml + group_w * gi as f64;
            if self.stacked {
                let bar_w = group_w * 0.6;
                let mut acc = 0.0;
                for (si, (_, values)) in self.series.iter().enumerate() {
                    let v = values[gi];
                    let bh = plot_h * v / max_y;
                    let y = mt + plot_h - plot_h * (acc + v) / max_y;
                    let _ = writeln!(
                        svg,
                        "<rect x=\"{:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{bh:.1}\" \
                         fill=\"{}\"/>",
                        gx + group_w * 0.2,
                        PALETTE[si % PALETTE.len()]
                    );
                    acc += v;
                }
            } else {
                let bar_w = group_w * 0.8 / nseries;
                for (si, (_, values)) in self.series.iter().enumerate() {
                    let v = values[gi];
                    let bh = plot_h * v / max_y;
                    let x = gx + group_w * 0.1 + bar_w * si as f64;
                    let y = mt + plot_h - bh;
                    let _ = writeln!(
                        svg,
                        "<rect x=\"{x:.1}\" y=\"{y:.1}\" width=\"{bar_w:.1}\" height=\"{bh:.1}\" \
                         fill=\"{}\"/>",
                        PALETTE[si % PALETTE.len()]
                    );
                }
            }
            let _ = writeln!(
                svg,
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\" {} \
                 transform=\"rotate(-40 {:.1} {:.1})\">{}</text>",
                gx + group_w / 2.0,
                mt + plot_h + 14.0,
                axis_font(),
                gx + group_w / 2.0,
                mt + plot_h + 14.0,
                xml(label)
            );
        }
        // Legend.
        for (si, (name, _)) in self.series.iter().enumerate() {
            let x = ml + 120.0 * si as f64;
            let y = h - 14.0;
            let _ = writeln!(
                svg,
                "<rect x=\"{x}\" y=\"{}\" width=\"10\" height=\"10\" fill=\"{}\"/>\
                 <text x=\"{}\" y=\"{y}\" {}>{}</text>",
                y - 9.0,
                PALETTE[si % PALETTE.len()],
                x + 14.0,
                axis_font(),
                xml(name)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// A scatter plot with colored classes and optional log-scaled axes.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    title: String,
    x_label: String,
    y_label: String,
    classes: Vec<(String, Vec<(f64, f64)>)>,
    log_y: bool,
}

impl ScatterPlot {
    /// Starts a scatter plot.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            classes: Vec::new(),
            log_y: false,
        }
    }

    /// Log-scales the y axis.
    pub fn log_y(&mut self) -> &mut Self {
        self.log_y = true;
        self
    }

    /// Adds a named point class.
    pub fn class(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) -> &mut Self {
        self.classes.push((name.into(), points));
        self
    }

    /// Renders the plot as an SVG document.
    pub fn render(&self) -> String {
        let (w, h) = (640.0, 480.0);
        let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 60.0);
        let plot_w = w - ml - mr;
        let plot_h = h - mt - mb;
        let all: Vec<(f64, f64)> = self
            .classes
            .iter()
            .flat_map(|(_, p)| p.iter().copied())
            .collect();
        let tx = |v: f64| v;
        let ty = |v: f64| if self.log_y { v.max(1e-12).log10() } else { v };
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(tx(x));
            x1 = x1.max(tx(x));
            y0 = y0.min(ty(y));
            y1 = y1.max(ty(y));
        }
        if !x0.is_finite() {
            (x0, x1, y0, y1) = (0.0, 1.0, 0.0, 1.0);
        }
        if (x1 - x0).abs() < 1e-12 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-12 {
            y1 = y0 + 1.0;
        }
        let px = |x: f64| ml + plot_w * (tx(x) - x0) / (x1 - x0);
        let py = |y: f64| mt + plot_h - plot_h * (ty(y) - y0) / (y1 - y0);

        let mut svg = String::new();
        let _ = write!(
            svg,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h}\" \
             viewBox=\"0 0 {w} {h}\">\n<rect width=\"{w}\" height=\"{h}\" fill=\"white\"/>\n"
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"24\" text-anchor=\"middle\" {} font-size=\"15\">{}</text>",
            w / 2.0,
            axis_font(),
            xml(&self.title)
        );
        let _ = writeln!(
            svg,
            "<line x1=\"{ml}\" y1=\"{mt}\" x2=\"{ml}\" y2=\"{}\" stroke=\"black\"/>\
             <line x1=\"{ml}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"black\"/>",
            mt + plot_h,
            mt + plot_h,
            ml + plot_w,
            mt + plot_h
        );
        let _ = writeln!(
            svg,
            "<text x=\"{}\" y=\"{}\" text-anchor=\"middle\" {}>{}</text>",
            ml + plot_w / 2.0,
            h - 24.0,
            axis_font(),
            xml(&self.x_label)
        );
        let _ = writeln!(
            svg,
            "<text x=\"16\" y=\"{}\" transform=\"rotate(-90 16 {})\" text-anchor=\"middle\" {}>{}{}</text>",
            mt + plot_h / 2.0,
            mt + plot_h / 2.0,
            axis_font(),
            xml(&self.y_label),
            if self.log_y { " (log)" } else { "" }
        );
        for (ci, (name, points)) in self.classes.iter().enumerate() {
            let color = PALETTE[ci % PALETTE.len()];
            for &(x, y) in points {
                let _ = writeln!(
                    svg,
                    "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"3\" fill=\"{color}\" \
                     fill-opacity=\"0.6\"/>",
                    px(x),
                    py(y)
                );
            }
            let lx = ml + 10.0;
            let ly = mt + 16.0 + 16.0 * ci as f64;
            let _ = writeln!(
                svg,
                "<circle cx=\"{lx}\" cy=\"{}\" r=\"4\" fill=\"{color}\"/>\
                 <text x=\"{}\" y=\"{ly}\" {}>{}</text>",
                ly - 4.0,
                lx + 10.0,
                axis_font(),
                xml(name)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

/// Writes an SVG document under `target/experiments/`.
pub fn write_svg(name: &str, content: &str) {
    let path = crate::experiments_dir().join(format!("{name}.svg"));
    std::fs::write(&path, content).expect("write svg");
    println!("[svg] {}", path.display());
}

fn xml(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn human(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.0}k", v / 1e3)
    } else {
        format!("{v:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_chart_renders_all_elements() {
        let mut c = BarChart::grouped("model vs sim", "cycles");
        c.labels(["l1", "l2", "l3"]);
        c.series("model", vec![10.0, 20.0, 30.0]);
        c.series("sim", vec![12.0, 18.0, 33.0]);
        let svg = c.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        // 3 groups x 2 series bars.
        assert_eq!(svg.matches("<rect").count(), 1 + 6 + 2); // bg + bars + legend
        assert!(svg.contains("model vs sim"));
        assert!(svg.contains("l3"));
    }

    #[test]
    fn stacked_chart_stacks_to_totals() {
        let mut c = BarChart::stacked("breakdown", "cc");
        c.labels(["a"]);
        c.series("x", vec![5.0]);
        c.series("y", vec![15.0]);
        let svg = c.render();
        assert_eq!(svg.matches("<rect").count(), 1 + 2 + 2);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn series_arity_checked() {
        let mut c = BarChart::grouped("t", "y");
        c.labels(["a", "b"]);
        c.series("x", vec![1.0]);
    }

    #[test]
    fn scatter_renders_classes_and_escapes() {
        let mut p = ScatterPlot::new("a<b", "area", "latency");
        p.log_y();
        p.class("16x16", vec![(1.0, 10.0), (2.0, 100.0)]);
        p.class("32x32", vec![(3.0, 1000.0)]);
        let svg = p.render();
        assert!(svg.contains("a&lt;b"));
        // 3 points + 2 legend dots.
        assert_eq!(svg.matches("<circle").count(), 5);
        assert!(svg.contains("(log)"));
    }

    #[test]
    fn empty_scatter_does_not_panic() {
        let p = ScatterPlot::new("empty", "x", "y");
        let svg = p.render();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn human_numbers() {
        assert_eq!(human(12.0), "12");
        assert_eq!(human(1200.0), "1k");
        assert_eq!(human(3_400_000.0), "3.4M");
    }
}
