//! **DSE hot path** — the per-ordering cost that dominates Fig. 8's
//! architecture sweep. Compares the pre-optimization baseline (fresh
//! allocations + full evaluation for every ordering) against the
//! optimized search (reusable scratch, branch-and-bound pruning, prefix
//! memoization, optional intra-design parallelism) on the Fig. 8
//! case-study workload, and writes the numbers to `BENCH_mapper.json`
//! (path overridable via the `BENCH_MAPPER_JSON` env var).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::time::Instant;
use ulm::mapper::enumerate;
use ulm::prelude::*;

/// System allocator wrapper counting every allocation, so the JSON
/// snapshot can report allocations-per-ordering for both paths.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, AtomicOrdering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCATIONS.load(AtomicOrdering::SeqCst)
}

/// The Fig. 8 DSE workload: the scaled-down case-study chip evaluating
/// an Im2Col-lowered layer under the canonical 16x8x2 spatial unrolling.
fn setup() -> (Architecture, Layer, SpatialUnroll) {
    let arch = presets::case_study_chip(128);
    let layer = Layer::matmul("fig8-dse", 64, 96, 640, Precision::int8_out24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    (arch, layer, spatial)
}

struct Snapshot {
    space: u128,
    baseline_secs: f64,
    baseline_allocs_per_ordering: f64,
    baseline_score_bits: u64,
    fast_secs: f64,
    fast_allocs_per_ordering: f64,
    fast_score_bits: u64,
    batch_lanes: usize,
    batched_secs: f64,
    batched_allocs_per_ordering: f64,
    batched_pruned: usize,
    batched_cache_hits: u64,
    batched_score_bits: u64,
    par_secs: f64,
    par_threads: usize,
    par_score_bits: u64,
    model_iters: u64,
    model_eval_secs: f64,
    model_eval_fast_secs: f64,
    model_bits_identical: bool,
    delta_iters: u64,
    delta_full_secs: f64,
    delta_incr_secs: f64,
    delta_stages_rebuilt: u32,
    delta_stages_skipped: u32,
    delta_bits_identical: bool,
    surrogate_iters: u64,
    surrogate_secs: f64,
    surrogate_cold_secs: f64,
    surrogate_full_secs: f64,
    surrogate_bits_identical: bool,
}

/// One-shot wall-clock measurement of the three search flavors over the
/// identical exhaustive ordering space.
fn measure() -> Snapshot {
    let (arch, layer, spatial) = setup();
    let opts = MapperOptions {
        max_exhaustive: 1_000_000, // force exhaustive enumeration
        ..MapperOptions::default()
    };

    // Baseline: the pre-optimization search loop — every ordering goes
    // through the allocating `evaluate_ordering` path, first-strictly-
    // better argmin.
    let mapper = Mapper::new(&arch, &layer, spatial.clone()).with_options(opts);
    let factors = mapper.factors();
    let space = mapper.space_size();
    let a0 = allocs();
    let t0 = Instant::now();
    let mut best: Option<EvaluatedMapping> = None;
    let mut generated = 0u64;
    enumerate::for_each_ordering(&factors, |ordering| {
        generated += 1;
        if let Some(em) = mapper.evaluate_ordering(ordering) {
            let better = best
                .as_ref()
                .map(|b| em.score(Objective::Latency) < b.score(Objective::Latency))
                .unwrap_or(true);
            if better {
                best = Some(em);
            }
        }
        true
    });
    let baseline_secs = t0.elapsed().as_secs_f64();
    let baseline_allocs = allocs() - a0;
    let best = best.expect("baseline finds a legal mapping");
    assert_eq!(generated as u128, space);

    // Optimized serial search over the same space, scalar lanes: the
    // pre-batching fast path kept as the differential oracle.
    let a1 = allocs();
    let t1 = Instant::now();
    let fast = Mapper::new(&arch, &layer, spatial.clone())
        .with_options(opts)
        .with_batch_lanes(Some(1))
        .search(Objective::Latency)
        .expect("fast search finds a legal mapping");
    let fast_secs = t1.elapsed().as_secs_f64();
    let fast_allocs = allocs() - a1;

    // Batched SoA kernel at the default lane count, serial.
    let a2 = allocs();
    let t2 = Instant::now();
    let batched = Mapper::new(&arch, &layer, spatial.clone())
        .with_options(opts)
        .search(Objective::Latency)
        .expect("batched search finds a legal mapping");
    let batched_secs = t2.elapsed().as_secs_f64();
    let batched_allocs = allocs() - a2;

    // Batched search with intra-design work-stealing parallelism at the
    // detected core count.
    let par_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let t3 = Instant::now();
    let par = Mapper::new(&arch, &layer, spatial)
        .with_options(opts)
        .with_parallelism(Some(par_threads))
        .search(Objective::Latency)
        .expect("parallel search finds a legal mapping");
    let par_secs = t3.elapsed().as_secs_f64();

    // All four must agree bit-for-bit (the equivalence property tests
    // check this exhaustively; the bench double-checks its own run).
    let baseline_bits = best.latency.cc_total.to_bits();
    assert_eq!(baseline_bits, fast.best.latency.cc_total.to_bits());
    assert_eq!(baseline_bits, batched.best.latency.cc_total.to_bits());
    assert_eq!(baseline_bits, par.best.latency.cc_total.to_bits());
    assert_eq!(best.mapping, fast.best.mapping);
    assert_eq!(best.mapping, batched.best.mapping);
    assert_eq!(best.mapping, par.best.mapping);
    assert_eq!(fast.stats.evaluated, batched.stats.evaluated);
    assert_eq!(fast.stats.pruned, batched.stats.pruned);

    // Report-assembling vs scratch-based latency evaluation on the best
    // mapping: both run the same lowering + Steps 2-3 core, so the only
    // difference is report assembly vs scalar reuse.
    let view = MappedLayer::new(&layer, &arch, &fast.best.mapping).expect("legal best mapping");
    let model = LatencyModel::new();
    let mut scratch = ModelScratch::default();
    let model_iters: u64 = 2_000;
    let t3 = Instant::now();
    let mut slow_bits = 0u64;
    for _ in 0..model_iters {
        slow_bits = black_box(model.evaluate(&view)).cc_total.to_bits();
    }
    let model_eval_secs = t3.elapsed().as_secs_f64();
    let t4 = Instant::now();
    let mut fast_bits = 0u64;
    for _ in 0..model_iters {
        fast_bits = black_box(model.evaluate_fast(&view, &mut scratch))
            .cc_total
            .to_bits();
    }
    let model_eval_fast_secs = t4.elapsed().as_secs_f64();

    // Delta evaluation: re-evaluating a one-knob GB-bandwidth neighbor
    // of the design, as `explore_bw_sweep` does per sweep point. Full =
    // from-scratch lowering + Steps 1-3 per point; incremental = only
    // the bandwidth-dirty stages (phase inputs + DTL stall refresh) on
    // the cached lowering.
    let (neighbor, delta) =
        apply_overrides(&arch, &["mem.GB.bw=2x"]).expect("GB bandwidth knob applies");
    let neighbor_view = MappedLayer::new(&layer, &neighbor, &fast.best.mapping)
        .expect("bandwidth does not affect capacity legality");
    let delta_iters: u64 = 2_000;
    let t5 = Instant::now();
    let mut full_bits = 0u64;
    for _ in 0..delta_iters {
        full_bits = black_box(model.evaluate_fast(&neighbor_view, &mut scratch))
            .cc_total
            .to_bits();
    }
    let delta_full_secs = t5.elapsed().as_secs_f64();
    // Prime the scratch on the base design, then hit the neighbor with
    // only the bandwidth delta, steady-state.
    model.evaluate_delta_fast(&view, InputDelta::ALL, &mut scratch);
    let mut rebuild = RebuildStats::default();
    let t6 = Instant::now();
    let mut incr_bits = 0u64;
    for _ in 0..delta_iters {
        let (f, stats) = model.evaluate_delta_fast(black_box(&neighbor_view), delta, &mut scratch);
        incr_bits = black_box(f).cc_total.to_bits();
        rebuild = stats;
    }
    let delta_incr_secs = t6.elapsed().as_secs_f64();

    // Specialized surrogate: fold the arch-constant tables once for the
    // (arch, incumbent shape) pair, then answer the Fig. 8 workload
    // point through the specialized kernel. The steady-state loop is
    // serve's repeated-request pattern (the first query runs the kernel,
    // repeats hit the point memo); the cold loop clears the memo every
    // iteration to price the kernel itself. The baseline is the full
    // fixed-arch path a sweep client would otherwise run per point:
    // greedy allocation + validation + `evaluate_fast` on a warm
    // scratch.
    let shape =
        MappingShape::from_mapping(&fast.best.mapping).expect("matmul incumbents have shapes");
    let surrogate_spatial = shape.spatial().clone();
    let surrogate_stack = fast.best.mapping.stack().clone();
    let mut spec = SpecializedModel::prepare(LatencyModel::new(), &arch, &layer, shape)
        .expect("matmul templates specialize");
    let surrogate_iters: u64 = 20_000;
    let t7 = Instant::now();
    let mut surrogate_bits = 0u64;
    for _ in 0..surrogate_iters {
        surrogate_bits = black_box(
            spec.query(black_box(64), 96, 640)
                .expect("the Fig. 8 point is feasible"),
        )
        .cc_total
        .to_bits();
    }
    let surrogate_secs = t7.elapsed().as_secs_f64();
    // Kernel-only rate: clearing the point memo before each query forces
    // the full specialized rebuild every time.
    let t7b = Instant::now();
    let mut surrogate_cold_bits = 0u64;
    for _ in 0..surrogate_iters {
        spec.clear_memo();
        surrogate_cold_bits = black_box(
            spec.query(black_box(64), 96, 640)
                .expect("the Fig. 8 point is feasible"),
        )
        .cc_total
        .to_bits();
    }
    let surrogate_cold_secs = t7b.elapsed().as_secs_f64();
    let t8 = Instant::now();
    let mut surrogate_full_bits = 0u64;
    for _ in 0..surrogate_iters {
        let m = Mapping::with_greedy_alloc(
            &arch,
            &layer,
            surrogate_spatial.clone(),
            surrogate_stack.clone(),
        )
        .expect("incumbent stack stays legal");
        let v = MappedLayer::new(&layer, &arch, &m).expect("legal mapping");
        surrogate_full_bits = black_box(model.evaluate_fast(&v, &mut scratch))
            .cc_total
            .to_bits();
    }
    let surrogate_full_secs = t8.elapsed().as_secs_f64();

    Snapshot {
        space,
        baseline_secs,
        baseline_allocs_per_ordering: baseline_allocs as f64 / generated as f64,
        baseline_score_bits: baseline_bits,
        fast_secs,
        fast_allocs_per_ordering: fast_allocs as f64 / generated as f64,
        fast_score_bits: fast.best.latency.cc_total.to_bits(),
        batch_lanes: batched.stats.batch_lanes,
        batched_secs,
        batched_allocs_per_ordering: batched_allocs as f64 / generated as f64,
        batched_pruned: batched.stats.pruned,
        batched_cache_hits: batched.stats.cache_hits,
        batched_score_bits: batched.best.latency.cc_total.to_bits(),
        par_secs,
        par_threads,
        par_score_bits: par.best.latency.cc_total.to_bits(),
        model_iters,
        model_eval_secs,
        model_eval_fast_secs,
        model_bits_identical: slow_bits == fast_bits,
        delta_iters,
        delta_full_secs,
        delta_incr_secs,
        delta_stages_rebuilt: rebuild.stages_rebuilt,
        delta_stages_skipped: rebuild.stages_skipped,
        delta_bits_identical: full_bits == incr_bits,
        surrogate_iters,
        surrogate_secs,
        surrogate_cold_secs,
        surrogate_full_secs,
        surrogate_bits_identical: surrogate_bits == surrogate_full_bits
            && surrogate_cold_bits == surrogate_full_bits,
    }
}

fn json_path() -> PathBuf {
    std::env::var_os("BENCH_MAPPER_JSON")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("BENCH_mapper.json")
        })
}

fn write_snapshot(s: &Snapshot) {
    let n = s.space as f64;
    let baseline_ops = n / s.baseline_secs;
    let fast_ops = n / s.fast_secs;
    let batched_ops = n / s.batched_secs;
    let par_ops = n / s.par_secs;
    let json = format!(
        "{{\n  \"workload\": \"fig8-dse case_study_chip(128) matmul 64x96x640, spatial K16 B8 C2\",\n  \
         \"orderings\": {},\n  \
         \"baseline_secs\": {:.6},\n  \
         \"baseline_orderings_per_sec\": {:.1},\n  \
         \"baseline_allocs_per_ordering\": {:.2},\n  \
         \"fast_serial_secs\": {:.6},\n  \
         \"fast_serial_orderings_per_sec\": {:.1},\n  \
         \"fast_serial_allocs_per_ordering\": {:.4},\n  \
         \"fast_serial_speedup\": {:.2},\n  \
         \"batch_lanes\": {},\n  \
         \"batched_secs\": {:.6},\n  \
         \"batched_orderings_per_sec\": {:.1},\n  \
         \"batched_allocs_per_ordering\": {:.4},\n  \
         \"batched_speedup\": {:.2},\n  \
         \"batched_vs_scalar\": {:.2},\n  \
         \"fast_parallel_threads\": {},\n  \
         \"fast_parallel_secs\": {:.6},\n  \
         \"fast_parallel_orderings_per_sec\": {:.1},\n  \
         \"fast_parallel_speedup\": {:.2},\n  \
         \"fast_parallel_scaling_per_thread\": {:.2},\n  \
         \"pruned\": {},\n  \
         \"prefix_reuses\": {},\n  \
         \"results_bit_identical\": {},\n  \
         \"model_evaluate_per_sec\": {:.1},\n  \
         \"model_evaluate_fast_per_sec\": {:.1},\n  \
         \"model_fast_speedup\": {:.2},\n  \
         \"model_bits_identical\": {},\n  \
         \"delta_workload\": \"one-knob neighbor mem.GB.bw=2x of the best Fig. 8 mapping\",\n  \
         \"delta_full_points_per_sec\": {:.1},\n  \
         \"delta_incremental_points_per_sec\": {:.1},\n  \
         \"delta_eval_speedup\": {:.2},\n  \
         \"delta_stages_rebuilt\": {},\n  \
         \"delta_stages_skipped\": {},\n  \
         \"delta_bits_identical\": {},\n  \
         \"surrogate_workload\": \"Fig. 8 point 64x96x640 on the (case-study arch, incumbent shape) specialization\",\n  \
         \"surrogate_points_per_sec\": {:.1},\n  \
         \"surrogate_cold_points_per_sec\": {:.1},\n  \
         \"surrogate_full_path_points_per_sec\": {:.1},\n  \
         \"surrogate_vs_fast_speedup\": {:.2},\n  \
         \"surrogate_cold_vs_full_speedup\": {:.2},\n  \
         \"surrogate_bits_identical\": {}\n}}\n",
        s.space,
        s.baseline_secs,
        baseline_ops,
        s.baseline_allocs_per_ordering,
        s.fast_secs,
        fast_ops,
        s.fast_allocs_per_ordering,
        s.baseline_secs / s.fast_secs,
        s.batch_lanes,
        s.batched_secs,
        batched_ops,
        s.batched_allocs_per_ordering,
        s.baseline_secs / s.batched_secs,
        s.fast_secs / s.batched_secs,
        s.par_threads,
        s.par_secs,
        par_ops,
        s.baseline_secs / s.par_secs,
        (s.batched_secs / s.par_secs) / s.par_threads as f64,
        s.batched_pruned,
        s.batched_cache_hits,
        s.baseline_score_bits == s.fast_score_bits
            && s.baseline_score_bits == s.batched_score_bits
            && s.baseline_score_bits == s.par_score_bits,
        s.model_iters as f64 / s.model_eval_secs,
        s.model_iters as f64 / s.model_eval_fast_secs,
        s.model_eval_secs / s.model_eval_fast_secs,
        s.model_bits_identical,
        s.delta_iters as f64 / s.delta_full_secs,
        s.delta_iters as f64 / s.delta_incr_secs,
        s.delta_full_secs / s.delta_incr_secs,
        s.delta_stages_rebuilt,
        s.delta_stages_skipped,
        s.delta_bits_identical,
        s.surrogate_iters as f64 / s.surrogate_secs,
        s.surrogate_iters as f64 / s.surrogate_cold_secs,
        s.surrogate_iters as f64 / s.surrogate_full_secs,
        s.surrogate_full_secs / s.surrogate_secs,
        s.surrogate_full_secs / s.surrogate_cold_secs,
        s.surrogate_bits_identical,
    );
    let path = json_path();
    fs::write(&path, json).expect("write BENCH_mapper.json");
    println!(
        "[bench] {} orderings: baseline {:.0}/s, scalar {:.0}/s ({:.1}x), batched({} lanes) \
         {:.0}/s ({:.1}x, {:.1}x vs scalar), parallel({}) {:.0}/s ({:.1}x)",
        s.space,
        baseline_ops,
        fast_ops,
        s.baseline_secs / s.fast_secs,
        s.batch_lanes,
        batched_ops,
        s.baseline_secs / s.batched_secs,
        s.fast_secs / s.batched_secs,
        s.par_threads,
        par_ops,
        s.baseline_secs / s.par_secs,
    );
    println!(
        "[bench] latency model: evaluate {:.0}/s vs evaluate_fast {:.0}/s ({:.1}x)",
        s.model_iters as f64 / s.model_eval_secs,
        s.model_iters as f64 / s.model_eval_fast_secs,
        s.model_eval_secs / s.model_eval_fast_secs,
    );
    println!(
        "[bench] delta eval (mem.GB.bw=2x neighbor): full {:.0}/s vs incremental {:.0}/s \
         ({:.1}x, {} stages rebuilt / {} skipped, identical: {})",
        s.delta_iters as f64 / s.delta_full_secs,
        s.delta_iters as f64 / s.delta_incr_secs,
        s.delta_full_secs / s.delta_incr_secs,
        s.delta_stages_rebuilt,
        s.delta_stages_skipped,
        s.delta_bits_identical,
    );
    println!(
        "[bench] surrogate (Fig. 8 point): specialized {:.0}/s (cold {:.0}/s) vs full path \
         {:.0}/s ({:.1}x, cold {:.1}x, identical: {})",
        s.surrogate_iters as f64 / s.surrogate_secs,
        s.surrogate_iters as f64 / s.surrogate_cold_secs,
        s.surrogate_iters as f64 / s.surrogate_full_secs,
        s.surrogate_full_secs / s.surrogate_secs,
        s.surrogate_full_secs / s.surrogate_cold_secs,
        s.surrogate_bits_identical,
    );
    println!("[json] {}", path.display());
}

fn bench_hot_path(c: &mut Criterion) {
    let snapshot = measure();
    write_snapshot(&snapshot);

    // Per-ordering microbenches: the allocating slow path vs the
    // scratch-reusing fast path on a representative ordering.
    let (arch, layer, spatial) = setup();
    let mapper = Mapper::new(&arch, &layer, spatial);
    let factors = mapper.factors();
    let mut ordering = Vec::new();
    enumerate::for_each_ordering(&factors, |o| {
        ordering = o.to_vec();
        false // keep only the first ordering
    });
    let mut scratch = mapper.scratch();
    mapper.evaluate_ordering_fast(&ordering, Objective::Latency, &mut scratch);

    let mut g = c.benchmark_group("mapper_hot_path");
    g.bench_function("evaluate_ordering_slow", |b| {
        b.iter(|| black_box(mapper.evaluate_ordering(black_box(&ordering))))
    });
    g.bench_function("evaluate_ordering_fast", |b| {
        b.iter(|| {
            black_box(mapper.evaluate_ordering_fast(
                black_box(&ordering),
                Objective::Latency,
                &mut scratch,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
