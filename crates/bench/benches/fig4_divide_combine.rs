//! **Fig. 4** — the worked Divide/Combine example: derive `SS_comb` of a
//! local buffer's read port that is shared by non-double-buffered
//! W/I/O register files, showing each intermediate attribute of Steps 1
//! and 2. The toy preset is exactly this topology.

use ulm::prelude::*;
use ulm_bench::Table;

fn main() {
    let chip = presets::toy_chip();
    let layer = Layer::matmul("fig4", 4, 4, 8, Precision::int8_acc24());
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    // Inner->outer: C8, B2, K2 (the figure's style of a small mixed nest).
    let stack = LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
    let mapping = Mapping::with_greedy_alloc(&chip.arch, &layer, spatial, stack).expect("legal");
    let view = MappedLayer::new(&layer, &chip.arch, &mapping).expect("valid");
    let r = LatencyModel::new().evaluate(&view);

    println!("architecture: {} | layer: {layer}", chip.arch);
    println!("mapping: {mapping}");

    // Step 1: Divide — per-DTL attributes.
    let mut t1 = Table::new(
        "Step 1 (Divide): per-DTL attributes",
        &[
            "DTL",
            "Mem_DATA [b]",
            "Mem_CC",
            "Z",
            "ReqBW [b/cy]",
            "RealBW [b/cy]",
            "X_REQ",
            "X_REAL",
            "SS_u",
        ],
    );
    for d in &r.dtls {
        t1.row(vec![
            d.label.clone(),
            format!("{}", d.data_bits),
            format!("{}", d.period),
            format!("{}", d.z),
            format!("{:.1}", d.req_bw),
            format!("{:.1}", d.real_bw),
            format!("{:.2}", d.data_bits as f64 / d.req_bw),
            format!("{:.2}", d.data_bits as f64 / d.real_bw),
            format!("{:.0}", d.ss_u),
        ]);
    }
    t1.print();
    t1.write_csv("fig4_step1_dtls");

    // Step 2: Combine — per shared physical port.
    let mut t2 = Table::new(
        "Step 2 (Combine): per shared port (Eq. 1/2)",
        &[
            "port",
            "ReqBW_comb",
            "RealBW",
            "MUW_comb",
            "SS_comb",
            "links",
        ],
    );
    for p in &r.ports {
        t2.row(vec![
            format!("{} p{}", p.memory, p.port),
            format!("{:.1}", p.req_bw_comb),
            format!("{:.1}", p.real_bw),
            format!("{:.0}", p.muw_comb),
            format!("{:.0}", p.ss_comb),
            p.dtls.join(" + "),
        ]);
    }
    t2.print();
    t2.write_csv("fig4_step2_ports");

    // Per-memory max and Step 3 integration.
    let mut t3 = Table::new(
        "Step 2b/3: per-memory max and overall integration",
        &["memory", "SS [cc]"],
    );
    for m in &r.memories {
        t3.row(vec![m.memory.clone(), format!("{:.0}", m.ss)]);
    }
    t3.print();
    println!(
        "\nSS_overall = {:.0} cc (policy: concurrent memories, max) -> total \
         latency {:.0} cc, utilization {:.1}%",
        r.ss_overall,
        r.cc_total,
        r.utilization * 100.0
    );

    // The figure's headline: the shared LB read port combines the W and I
    // refill demands; both stall individually here, so Eq. (2) adds them.
    let lb_read = r
        .ports
        .iter()
        .find(|p| p.memory == "LB" && p.dtls.len() >= 2)
        .expect("shared LB read port exists");
    assert!(lb_read.ss_comb > 0.0, "the shared port must stall");
}
