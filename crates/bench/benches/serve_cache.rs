//! `ulm-serve` speed benches: what the content-addressed cache buys on
//! repeated evaluation, and what the parallelism knob buys on a DSE sweep.
//!
//! Two groups:
//!
//! * `serve_cache` — the same search request answered cold (fresh service
//!   every iteration) vs warm (one service, cache hit after the first
//!   iteration);
//! * `dse_parallelism` — the identical design sweep on 1 vs N threads
//!   (the results are byte-identical; only the wall clock changes).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ulm::dse::{enumerate_designs, explore, ExploreOptions, MemoryPool};
use ulm::prelude::*;
use ulm::serve::{EvalService, ServeOptions};

const REQUEST: &str = r#"{"kind":"search","arch":"case16","layer":"64x96x640","mapper":{"max_exhaustive":500,"samples":50}}"#;

fn quiet_service() -> std::sync::Arc<EvalService> {
    EvalService::new(ServeOptions {
        parallelism: Some(1),
        cache_capacity: 256,
        queue_capacity: None,
        ..ServeOptions::default()
    })
}

fn bench_cached_vs_uncached(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_cache");
    g.sample_size(10);
    g.bench_function("uncached_search", |b| {
        b.iter(|| {
            // A fresh service each time: every request is a miss.
            let svc = quiet_service();
            black_box(svc.handle_line(black_box(REQUEST)))
        })
    });
    let warm = quiet_service();
    warm.handle_line(REQUEST); // prime the cache
    g.bench_function("cached_search", |b| {
        b.iter(|| black_box(warm.handle_line(black_box(REQUEST))))
    });
    g.finish();
}

fn bench_dse_parallelism(c: &mut Criterion) {
    let layer = Layer::matmul("dse", 256, 256, 64, Precision::int8_out24());
    let pool = MemoryPool {
        w_reg_words_per_mac: vec![1, 2],
        i_reg_words_per_mac: vec![1, 2],
        o_reg_words_per_pe: vec![1, 2],
        w_lb_kb: vec![4, 16],
        i_lb_kb: vec![4, 16],
    };
    let designs = enumerate_designs(&pool, &[16], 128);
    let opts = |threads: Option<usize>| ExploreOptions {
        mapper: MapperOptions {
            max_exhaustive: 200,
            samples: 20,
            ..MapperOptions::default()
        },
        parallelism: threads,
        ..ExploreOptions::default()
    };

    let mut g = c.benchmark_group("dse_parallelism");
    g.sample_size(10);
    g.bench_function("threads_1", |b| {
        b.iter(|| black_box(explore(&designs, &layer, &opts(None))))
    });
    let n = std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get);
    g.bench_function("threads_all", |b| {
        b.iter(|| black_box(explore(&designs, &layer, &opts(Some(n)))))
    });
    g.finish();
}

criterion_group!(benches, bench_cached_vs_uncached, bench_dse_parallelism);
criterion_main!(benches);
