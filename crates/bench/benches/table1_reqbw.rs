//! **Table I** — `ReqBW` as a function of memory type (double-buffered or
//! not) and the top temporal loop type (relevant / irrelevant) allocated
//! to the level. Regenerates the table's three columns with measured
//! values from the model.

use ulm::model::DtlKind;
use ulm::prelude::*;
use ulm_bench::Table;

/// Two-level W-only design with a configurable register file.
fn arch_with(db: bool) -> Architecture {
    let mut b = MemoryHierarchy::builder();
    let mut w_reg = Memory::new("W-Reg", MemoryKind::RegisterFile, 64 * 8)
        .with_ports(vec![Port::read(512), Port::write(32)]);
    if db {
        w_reg = w_reg.double_buffered();
    }
    let w_reg = b.add_memory(w_reg);
    let top = b.add_memory(
        Memory::new("TOP", MemoryKind::Sram, 1 << 22)
            .with_ports(vec![Port::read(256), Port::write(256)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, top]);
    b.set_chain(Operand::I, vec![top]);
    b.set_chain(Operand::O, vec![top]);
    Architecture::new(
        if db { "db" } else { "non-db" },
        MacArray::square(2),
        b.build().unwrap(),
    )
}

/// Evaluates the W-Reg refill DTL under an explicit allocation.
fn w_refill(arch: &Architecture, stack: LoopStack, w_alloc: Vec<usize>) -> (f64, f64, f64) {
    let layer = Layer::matmul("t", 8, 8, 16, Precision::uniform(8));
    let spatial = SpatialUnroll::new(vec![(Dim::K, 2), (Dim::B, 2)]);
    let n = stack.len();
    let allocs = PerOperand::new(
        OperandAlloc::new(w_alloc),
        OperandAlloc::new(vec![n]),
        OperandAlloc::new(vec![n]),
    );
    let mapping = Mapping::new(spatial, stack, allocs);
    let view = MappedLayer::new(&layer, arch, &mapping).expect("legal");
    let r = LatencyModel::new().evaluate(&view);
    let d = r
        .dtls
        .iter()
        .find(|d| d.operand == Operand::W && d.kind == DtlKind::RefillDown)
        .expect("refill present");
    // BW0 = Mem_DATA / Mem_CC.
    let bw0 = d.data_bits as f64 / d.period as f64;
    (bw0, d.req_bw, d.ss_u)
}

fn main() {
    // Loop nest (inner→outer): C4 (r for W), B4 (ir for W), C4, K4.
    // The W-Reg level holds [C4, B4]: its top loop is the 4-fold
    // irrelevant B run.
    let stack = || LoopStack::from_pairs(&[(Dim::C, 4), (Dim::B, 4), (Dim::C, 4), (Dim::K, 4)]);
    // An r-top variant: W-Reg holds [C4] only.
    let stack_r = || LoopStack::from_pairs(&[(Dim::C, 4), (Dim::B, 4), (Dim::C, 4), (Dim::K, 4)]);

    let mut t = Table::new(
        "Table I: ReqBW by memory type x top temporal loop type",
        &[
            "memory type",
            "top loop",
            "mapper-seen capacity",
            "BW0 [b/cy]",
            "ReqBW [b/cy]",
            "ReqBW/BW0",
        ],
    );

    // Double-buffered: ReqBW = BW0 for both r and ir tops.
    let db = arch_with(true);
    let (bw0, req, _) = w_refill(&db, stack_r(), vec![1, 4]);
    t.row(vec![
        "DB".into(),
        "r".into(),
        "A/2".into(),
        format!("{bw0:.1}"),
        format!("{req:.1}"),
        format!("{:.0}x", req / bw0),
    ]);
    let (bw0, req, _) = w_refill(&db, stack(), vec![2, 4]);
    t.row(vec![
        "DB".into(),
        "ir (x4)".into(),
        "A/2".into(),
        format!("{bw0:.1}"),
        format!("{req:.1}"),
        format!("{:.0}x", req / bw0),
    ]);

    // Non-DB dual-port: r top keeps BW0, ir top scales by the run.
    let sb = arch_with(false);
    let (bw0, req, _) = w_refill(&sb, stack_r(), vec![1, 4]);
    t.row(vec![
        "non-DB".into(),
        "r".into(),
        "A".into(),
        format!("{bw0:.1}"),
        format!("{req:.1}"),
        format!("{:.0}x", req / bw0),
    ]);
    let (bw0, req, ss) = w_refill(&sb, stack(), vec![2, 4]);
    t.row(vec![
        "non-DB".into(),
        "ir (x4)".into(),
        "A".into(),
        format!("{bw0:.1}"),
        format!("{req:.1}"),
        format!("{:.0}x", req / bw0),
    ]);
    t.print();
    t.write_csv("table1_reqbw");

    assert!(
        ss >= 0.0 || ss < 0.0,
        "touch ss to keep it observable: {ss}"
    );
    println!(
        "\nPaper: ReqBW = BW0 for DB memories and non-DB with a relevant top\n\
         loop; ReqBW = BW0 x (top ir loop sizes) for non-DB with an\n\
         irrelevant top loop; the mapper sees A/2 capacity under DB."
    );
}
