//! Durable cache-log codec benches: the append-path record encoder and the
//! startup replay that warms a restarted service's cache.
//!
//! Replay cost is what a replica pays at boot, so it is the number that
//! decides how aggressively the server should compact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ulm::serve::store::{encode_record, replay, MAGIC};

/// A log of `records` entries with distinct fingerprints and `payload_len`
/// bytes of deterministic payload each.
fn synthetic_log(records: usize, payload_len: usize) -> Vec<u8> {
    let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
    let mut bytes = MAGIC.to_vec();
    for i in 0..records {
        bytes.extend_from_slice(&encode_record(i as u128 * 0x9E37_79B9, &payload));
    }
    bytes
}

fn bench_encode(c: &mut Criterion) {
    let payload: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
    c.bench_function("cache_log/encode_512B", |b| {
        b.iter(|| black_box(encode_record(black_box(7), black_box(&payload))))
    });
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_log_replay");
    g.sample_size(20);
    let small = synthetic_log(100, 512);
    g.bench_function("replay_100x512B", |b| {
        b.iter(|| black_box(replay(black_box(&small)).unwrap()))
    });
    let large = synthetic_log(10_000, 512);
    g.bench_function("replay_10000x512B", |b| {
        b.iter(|| black_box(replay(black_box(&large)).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_encode, bench_replay);
criterion_main!(benches);
