//! **Fig. 3** — the six timeline cases of a single DTL's stall/slack
//! `SS_u`: {zero, slack, stall} x {full-overlap window, keep-out window}.
//! Each case is constructed by picking the link bandwidth relative to the
//! required bandwidth, for both a relevant-top (cases a-c) and an
//! irrelevant-top (cases d-f) W-register level.

use ulm::model::DtlKind;
use ulm::prelude::*;
use ulm_bench::Table;

/// W-Reg refill attributes for a given write-port bandwidth and stack.
fn case(bw: u64, ir_top: bool) -> (f64, f64, f64, f64) {
    let mut b = MemoryHierarchy::builder();
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, 64 * 8)
            .with_ports(vec![Port::read(512), Port::write(bw)]),
    );
    let top = b.add_memory(
        Memory::new("TOP", MemoryKind::Sram, 1 << 22)
            .with_ports(vec![Port::read(512), Port::write(512)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, top]);
    b.set_chain(Operand::I, vec![top]);
    b.set_chain(Operand::O, vec![top]);
    let arch = Architecture::new("fig3", MacArray::square(2), b.build().unwrap());

    let layer = Layer::matmul("t", 8, 8, 16, Precision::uniform(8));
    let spatial = SpatialUnroll::new(vec![(Dim::K, 2), (Dim::B, 2)]);
    let (stack, w_alloc) = if ir_top {
        // W-Reg holds [C4, B4]: 4-fold irrelevant top run.
        (
            LoopStack::from_pairs(&[(Dim::C, 4), (Dim::B, 4), (Dim::C, 4), (Dim::K, 4)]),
            vec![2, 4],
        )
    } else {
        // W-Reg holds [C4]: relevant top.
        (
            LoopStack::from_pairs(&[(Dim::C, 4), (Dim::B, 4), (Dim::C, 4), (Dim::K, 4)]),
            vec![1, 4],
        )
    };
    let n = stack.len();
    let allocs = PerOperand::new(
        OperandAlloc::new(w_alloc),
        OperandAlloc::new(vec![n]),
        OperandAlloc::new(vec![n]),
    );
    let mapping = Mapping::new(spatial, stack, allocs);
    let view = MappedLayer::new(&layer, &arch, &mapping).expect("legal");
    let r = LatencyModel::new().evaluate(&view);
    let d = r
        .dtls
        .iter()
        .find(|d| d.operand == Operand::W && d.kind == DtlKind::RefillDown)
        .expect("refill");
    (d.req_bw, d.real_bw, d.ss_u, d.z as f64)
}

fn main() {
    let mut t = Table::new(
        "Fig. 3: six SS_u timeline cases for one DTL",
        &["case", "window", "ReqBW", "RealBW", "SS_u [cc]", "verdict"],
    );
    // Relevant top: X_REQ = Mem_CC (update fully overlaps compute).
    // (a) RealBW = ReqBW -> SS_u = 0; (b) faster -> slack; (c) slower -> stall.
    // W-Reg r-top block: C4 x K2 spatial = 8 words x 8b over Mem_CC 4 = 16 b/cy.
    let specs_r = [(16u64, "(a)"), (32, "(b)"), (8, "(c)")];
    for (bw, name) in specs_r {
        let (req, real, ss, _) = case(bw, false);
        let verdict = if ss == 0.0 {
            "zero"
        } else if ss < 0.0 {
            "slack"
        } else {
            "stall"
        };
        t.row(vec![
            name.into(),
            "full (r top / db)".into(),
            format!("{req:.1}"),
            format!("{real:.1}"),
            format!("{ss:.0}"),
            verdict.into(),
        ]);
    }
    // Irrelevant top run (x4): keep-out zone, X_REQ = Mem_CC/4, ReqBW x4.
    // Block: C4 x B4 level -> same 8 words, Mem_CC 16, ReqBW = 4 x BW0 = 16.
    let specs_ir = [(16u64, "(d)"), (32, "(e)"), (8, "(f)")];
    for (bw, name) in specs_ir {
        let (req, real, ss, _) = case(bw, true);
        let verdict = if ss == 0.0 {
            "zero"
        } else if ss < 0.0 {
            "slack"
        } else {
            "stall"
        };
        t.row(vec![
            name.into(),
            "keep-out (ir top)".into(),
            format!("{req:.1}"),
            format!("{real:.1}"),
            format!("{ss:.0}"),
            verdict.into(),
        ]);
    }
    t.print();
    t.write_csv("fig3_ssu_cases");

    // The six verdicts must be exactly the paper's: (a)(d) zero,
    // (b)(e) slack, (c)(f) stall.
    let verdicts: Vec<f64> = [
        (16, false),
        (32, false),
        (8, false),
        (16, true),
        (32, true),
        (8, true),
    ]
    .iter()
    .map(|&(bw, ir)| case(bw, ir).2)
    .collect();
    assert_eq!(verdicts[0], 0.0, "(a)");
    assert!(verdicts[1] < 0.0, "(b)");
    assert!(verdicts[2] > 0.0, "(c)");
    assert_eq!(verdicts[3], 0.0, "(d)");
    assert!(verdicts[4] < 0.0, "(e)");
    assert!(verdicts[5] > 0.0, "(f)");
    println!("\nAll six Fig. 3 sign cases reproduced.");
}
