//! **Fig. 6 (Case study 1)** — mapping vs latency on fixed hardware:
//! Mapping A (inputs fetched once; C split, partial sums shuttle through
//! the GB) against Mapping B (fully output-stationary at the O-Reg
//! level). Both have the identical ideal latency of 38,400 cycles; the
//! paper reports ~5% energy advantage for A but ~30% latency and ~26%
//! utilization advantage for B, caused by `SS_overall`.

use ulm::prelude::*;
use ulm_bench::{case1_layer, case1_mapping_a, case1_mapping_b, Table};

fn main() -> Result<(), ulm::error::UlmError> {
    let arch = presets::case_study_chip(128);
    let layer = case1_layer();
    println!("architecture: {arch}");
    println!("layer: {layer} ({} MACs)", layer.total_macs());

    // How large is the whole mapping space here? (Paper: 30,240 valid
    // mappings from the ZigZag mapper for its layer.)
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let mapper = Mapper::new(&arch, &layer, spatial);
    println!(
        "mapping space: {} loop-factor orderings (paper's mapper: 30,240 valid mappings)",
        mapper.space_size()
    );

    let a = case1_mapping_a(&arch, &layer);
    let b = case1_mapping_b(&arch, &layer);
    let va = MappedLayer::new(&layer, &arch, &a)?;
    let vb = MappedLayer::new(&layer, &arch, &b)?;
    let model = LatencyModel::new();
    let energy = EnergyModel::new();
    let (ra, rb) = (model.evaluate(&va), model.evaluate(&vb));
    let (ea, eb) = (energy.evaluate(&va), energy.evaluate(&vb));

    let mut t = Table::new(
        "Fig. 6(c)(d): Mapping A vs Mapping B",
        &["metric", "Mapping A", "Mapping B", "B vs A"],
    );
    t.row(vec![
        "temporal mapping".into(),
        format!("{}", a.stack()),
        format!("{}", b.stack()),
        "-".into(),
    ]);
    t.row(vec![
        "CC_ideal [cc]".into(),
        format!("{:.0}", ra.cc_ideal),
        format!("{:.0}", rb.cc_ideal),
        "identical".into(),
    ]);
    t.row(vec![
        "CC_spatial [cc]".into(),
        format!("{}", ra.cc_spatial),
        format!("{}", rb.cc_spatial),
        "identical".into(),
    ]);
    t.row(vec![
        "SS_overall [cc]".into(),
        format!("{:.0}", ra.ss_overall),
        format!("{:.0}", rb.ss_overall),
        format!("{:.1}x lower", ra.ss_overall / rb.ss_overall.max(1.0)),
    ]);
    t.row(vec![
        "latency [cc]".into(),
        format!("{:.0}", ra.cc_total),
        format!("{:.0}", rb.cc_total),
        format!("-{:.0}%", (1.0 - rb.cc_total / ra.cc_total) * 100.0),
    ]);
    t.row(vec![
        "MAC utilization [%]".into(),
        format!("{:.1}", ra.utilization * 100.0),
        format!("{:.1}", rb.utilization * 100.0),
        format!("+{:.0}%", (rb.utilization / ra.utilization - 1.0) * 100.0),
    ]);
    t.row(vec![
        "energy [nJ]".into(),
        format!("{:.1}", ea.total_pj() / 1000.0),
        format!("{:.1}", eb.total_pj() / 1000.0),
        format!("{:+.1}%", (eb.total_fj / ea.total_fj - 1.0) * 100.0),
    ]);
    t.print();
    t.write_csv("fig6_case1");

    // Fig. 6(f): ReqBW vs RealBW at the GB ports.
    let mut t2 = Table::new(
        "Fig. 6(f): GB required vs real bandwidth [bit/cycle]",
        &["mapping", "port", "ReqBW_comb", "RealBW"],
    );
    for (name, r) in [("A", &ra), ("B", &rb)] {
        for p in r.ports.iter().filter(|p| p.memory == "GB") {
            let dir = if p.port == 0 { "read" } else { "write" };
            t2.row(vec![
                name.into(),
                dir.into(),
                format!("{:.0}", p.req_bw_comb),
                format!("{:.0}", p.real_bw),
            ]);
        }
    }
    t2.print();
    t2.write_csv("fig6_gb_bandwidth");

    // Shape assertions mirroring the paper's claims.
    assert_eq!(ra.cc_spatial, 38_400);
    assert_eq!(rb.cc_spatial, 38_400);
    assert!(
        eb.total_fj > ea.total_fj,
        "A must win on energy (it reads inputs once, B re-reads them 6x): \
         A {:.0} vs B {:.0}",
        ea.total_fj,
        eb.total_fj
    );
    assert!(
        rb.cc_total < ra.cc_total * 0.9,
        "B must win >=10% on latency: A {:.0} vs B {:.0}",
        ra.cc_total,
        rb.cc_total
    );
    println!(
        "\nReproduced: energy-optimal Mapping A is {:.0}% slower than Mapping B;\n\
         without SS_overall both mappings look identical (38,400 cc).",
        (ra.cc_total / rb.cc_total - 1.0) * 100.0
    );
    Ok(())
}
