//! **Ablation** — measure how each modeling decision called out in
//! `DESIGN.md` §5 affects accuracy against the discrete-event simulator on
//! the validation workload:
//!
//! * `full`           — the shipped model;
//! * `literal_eq2`    — the paper's Eq. (2) without the port
//!   oversubscription bound;
//! * `paper_z`        — charge all `Z` periods to computation (no
//!   pre-load/off-load split);
//! * `no_compute_links` — ignore the MAC-array-facing links;
//! * `concurrent_only` — ignore the chip's sequential-chain Step-3 groups;
//! * `bw_unaware`     — the idealized baseline.

use ulm::model::ModelOptions;
use ulm::prelude::*;
use ulm_bench::Table;

struct Variant {
    name: &'static str,
    opts: ModelOptions,
    force_concurrent: bool,
}

fn variants() -> Vec<Variant> {
    let base = ModelOptions::default();
    vec![
        Variant {
            name: "full",
            opts: base,
            force_concurrent: false,
        },
        Variant {
            name: "literal_eq2",
            opts: ModelOptions {
                eq2_oversubscription_bound: false,
                ..base
            },
            force_concurrent: false,
        },
        Variant {
            name: "paper_z",
            opts: ModelOptions {
                phase_aware_z: false,
                ..base
            },
            force_concurrent: false,
        },
        Variant {
            name: "no_compute_links",
            opts: ModelOptions {
                compute_links: false,
                ..base
            },
            force_concurrent: false,
        },
        Variant {
            name: "concurrent_only",
            opts: base,
            force_concurrent: true,
        },
        Variant {
            name: "bw_unaware",
            opts: ModelOptions {
                bw_aware: false,
                ..base
            },
            force_concurrent: false,
        },
    ]
}

fn main() -> Result<(), ulm::error::UlmError> {
    let chip = presets::validation_chip();
    let concurrent = chip
        .arch
        .clone()
        .with_stall_integration(StallIntegration::Concurrent);
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let layers = networks::handtracking_validation_layers();

    // Fix one good mapping per layer (found with the full model) and
    // compare every variant against the simulator on it.
    let mut rows: Vec<(String, u64, Vec<f64>)> = Vec::new();
    for layer in &layers {
        let mapper = Mapper::new(&chip.arch, layer, spatial.clone()).with_options(MapperOptions {
            max_exhaustive: 3_000,
            samples: 120,
            ..MapperOptions::default()
        });
        let best = mapper.search(Objective::Latency)?.best;
        let view = MappedLayer::new(layer, &chip.arch, &best.mapping)?;
        let sim = Simulator::new().simulate(&view)?;
        let mut preds = Vec::new();
        for v in variants() {
            let arch_ref = if v.force_concurrent {
                &concurrent
            } else {
                &chip.arch
            };
            let view_v = MappedLayer::new(layer, arch_ref, &best.mapping)?;
            let r = LatencyModel::with_options(v.opts).evaluate(&view_v);
            preds.push(r.cc_total);
        }
        rows.push((layer.name().to_string(), sim.total_cycles, preds));
    }

    let names: Vec<&str> = variants().iter().map(|v| v.name).collect();
    let mut headers = vec!["layer", "sim [cc]"];
    headers.extend(names.iter().copied());
    let mut t = Table::new("Ablation: per-variant accuracy vs simulator [%]", &headers);
    let mut sums = vec![0.0; names.len()];
    for (layer, sim, preds) in &rows {
        let mut cells = vec![layer.clone(), format!("{sim}")];
        for (i, p) in preds.iter().enumerate() {
            let acc = (1.0 - (p - *sim as f64).abs() / *sim as f64) * 100.0;
            sums[i] += acc;
            cells.push(format!("{acc:.1}"));
        }
        t.row(cells);
    }
    let mut mean_cells = vec!["MEAN".to_string(), "-".to_string()];
    let means: Vec<f64> = sums.iter().map(|s| s / rows.len() as f64).collect();
    for m in &means {
        mean_cells.push(format!("{m:.1}"));
    }
    t.row(mean_cells);
    t.print();
    t.write_csv("ablation");

    // The shipped model must beat (or match) each ablated variant on mean
    // accuracy over this workload.
    let full = means[0];
    for (name, mean) in names.iter().zip(means.iter()).skip(1) {
        println!("  full {full:.1}% vs {name} {mean:.1}%");
        assert!(
            full + 0.5 >= *mean,
            "ablated variant `{name}` must not beat the shipped model: {full:.1} vs {mean:.1}"
        );
    }
    Ok(())
}
