//! **Section I / abstract claim** — analytical models are "orders of
//! magnitude faster" than cycle-level simulation: Criterion micro-benches
//! of one model evaluation vs one discrete-event simulation of the same
//! mapped layer, plus the cost of a full mapping search.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ulm::prelude::*;

fn setup() -> (Architecture, Layer, Mapping) {
    let arch = presets::case_study_chip(128);
    let layer = Layer::matmul("bench", 64, 96, 640, Precision::int8_out24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let stack = LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]);
    let mapping = Mapping::with_greedy_alloc(&arch, &layer, spatial, stack).expect("legal");
    (arch, layer, mapping)
}

fn bench_model_vs_sim(c: &mut Criterion) {
    let (arch, layer, mapping) = setup();
    let view = MappedLayer::new(&layer, &arch, &mapping).expect("valid");
    let model = LatencyModel::new();
    let sim = Simulator::new();

    let mut g = c.benchmark_group("latency_estimation");
    g.bench_function("analytical_model", |b| {
        b.iter(|| black_box(model.evaluate(black_box(&view))))
    });
    g.bench_function("discrete_event_sim", |b| {
        b.iter(|| black_box(sim.simulate(black_box(&view)).expect("simulates")))
    });
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let (arch, layer, mapping) = setup();
    let view = MappedLayer::new(&layer, &arch, &mapping).expect("valid");
    let energy = EnergyModel::new();

    let mut g = c.benchmark_group("components");
    g.bench_function("mapping_validation", |b| {
        b.iter(|| black_box(MappedLayer::new(&layer, &arch, &mapping).expect("valid")))
    });
    g.bench_function("energy_model", |b| {
        b.iter(|| black_box(energy.evaluate(black_box(&view))))
    });
    g.bench_function("greedy_allocation", |b| {
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let stack = LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]);
        b.iter(|| {
            black_box(
                Mapping::with_greedy_alloc(&arch, &layer, spatial.clone(), stack.clone())
                    .expect("legal"),
            )
        })
    });
    g.finish();
}

fn bench_mapping_search(c: &mut Criterion) {
    let arch = presets::case_study_chip(128);
    let layer = Layer::matmul("search", 64, 96, 640, Precision::int8_out24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);

    let mut g = c.benchmark_group("mapping_search");
    g.sample_size(10);
    g.bench_function("sampled_100", |b| {
        b.iter(|| {
            let mapper = Mapper::new(&arch, &layer, spatial.clone()).with_options(MapperOptions {
                max_exhaustive: 1, // force sampling
                samples: 100,
                ..MapperOptions::default()
            });
            black_box(mapper.search(Objective::Latency).expect("found"))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_model_vs_sim,
    bench_components,
    bench_mapping_search
);
criterion_main!(benches);
