//! **Fig. 8 (Case study 3)** — hardware design-space exploration:
//! thousands of designs from a memory pool across 16x16 / 32x32 / 64x64
//! MAC arrays, mapping-optimized per point, plotted as latency vs area
//! (GB excluded) in three regimes:
//!
//! * (a) a memory-BW-unaware model — designs of one array size collapse
//!   to a single latency, so minimum-area looks optimal;
//! * (b) the proposed model at 128 bit/cycle GB bandwidth — memory sizing
//!   spreads the latency, and the 32x32 array can beat the 64x64;
//! * (c) the proposed model at 1024 bit/cycle — designs re-cluster and
//!   the 64x64 array wins again.

use ulm::prelude::*;
use ulm_bench::svg::{write_svg, ScatterPlot};
use ulm_bench::Table;

fn summarize(points: &[DsePoint], title: &str, csv: &str) -> Vec<(u64, f64, f64)> {
    let mut t = Table::new(
        title,
        &[
            "array",
            "designs",
            "min lat [cc]",
            "max lat [cc]",
            "spread",
            "area@best [mm2]",
        ],
    );
    let mut best = Vec::new();
    for side in [16u64, 32, 64] {
        let of_side: Vec<&DsePoint> = points
            .iter()
            .filter(|p| p.params.array_side == side)
            .collect();
        if of_side.is_empty() {
            continue;
        }
        let min = of_side
            .iter()
            .min_by(|a, b| a.latency.total_cmp(&b.latency))
            .unwrap();
        let max = of_side
            .iter()
            .max_by(|a, b| a.latency.total_cmp(&b.latency))
            .unwrap();
        t.row(vec![
            format!("{side}x{side}"),
            format!("{}", of_side.len()),
            format!("{:.0}", min.latency),
            format!("{:.0}", max.latency),
            format!("{:.2}x", max.latency / min.latency),
            format!("{:.3}", min.area_mm2),
        ]);
        best.push((side, min.latency, min.area_mm2));
    }
    t.print();

    // Full scatter to CSV for plotting.
    let mut scatter = Table::new(
        format!("{title} (scatter)"),
        &[
            "array", "wReg", "iReg", "oReg", "wLB_kb", "iLB_kb", "latency", "area_mm2", "util",
        ],
    );
    for p in points {
        scatter.row(vec![
            format!("{}", p.params.array_side),
            format!("{}", p.params.w_reg_words),
            format!("{}", p.params.i_reg_words),
            format!("{}", p.params.o_reg_words),
            format!("{}", p.params.w_lb_kb),
            format!("{}", p.params.i_lb_kb),
            format!("{:.0}", p.latency),
            format!("{:.4}", p.area_mm2),
            format!("{:.3}", p.utilization),
        ]);
    }
    scatter.write_csv(csv);

    let mut plot = ScatterPlot::new(title, "area (GB excluded) [mm2]", "latency [cycles]");
    plot.log_y();
    for side in [16u64, 32, 64] {
        let pts: Vec<(f64, f64)> = points
            .iter()
            .filter(|p| p.params.array_side == side)
            .map(|p| (p.area_mm2, p.latency))
            .collect();
        if !pts.is_empty() {
            plot.class(format!("{side}x{side}"), pts);
        }
    }
    write_svg(csv, &plot.render());
    best
}

fn main() {
    // The full pool gives 450 designs per array side per bandwidth
    // (1,350 per regime, 4,050 total with both bandwidths plus the
    // BW-unaware pass — the paper's space has 4,176).
    let pool = MemoryPool::default();
    // An output-heavy workload (24-bit outputs, modest C): at low GB
    // bandwidth every array size converges toward the same GB-write wall,
    // which is exactly where the 32x32 array matches the 64x64 at a
    // fraction of its area.
    let layer = Layer::matmul("dse", 256, 256, 64, Precision::int8_out24());
    println!(
        "memory pool: {} combinations per array side; workload {layer}",
        pool.combinations()
    );

    let quick = |bw_aware: bool| ExploreOptions {
        mapper: MapperOptions {
            max_exhaustive: 500,
            samples: 40,
            bw_aware,
            ..MapperOptions::default()
        },
        ..ExploreOptions::default()
    };

    // (a) BW-unaware baseline at 128 b/cy.
    let designs_128 = enumerate_designs(&pool, &[16, 32, 64], 128);
    let unaware = explore(&designs_128, &layer, &quick(false));
    let ua = summarize(
        &unaware,
        "Fig. 8(a): BW-unaware model, GB 128 b/cy",
        "fig8a_unaware",
    );

    // (b) proposed model, low bandwidth.
    let aware_128 = explore(&designs_128, &layer, &quick(true));
    let lo = summarize(
        &aware_128,
        "Fig. 8(b): proposed model, GB 128 b/cy",
        "fig8b_bw128",
    );

    // (c) proposed model, high bandwidth.
    let designs_1024 = enumerate_designs(&pool, &[16, 32, 64], 1024);
    let aware_1024 = explore(&designs_1024, &layer, &quick(true));
    let hi = summarize(
        &aware_1024,
        "Fig. 8(c): proposed model, GB 1024 b/cy",
        "fig8c_bw1024",
    );

    println!(
        "\ntotal designs evaluated: {}",
        unaware.len() + aware_128.len() + aware_1024.len()
    );

    // Shape assertions.
    let spread = |points: &[DsePoint], side: u64| -> f64 {
        let of: Vec<f64> = points
            .iter()
            .filter(|p| p.params.array_side == side)
            .map(|p| p.latency)
            .collect();
        of.iter().cloned().fold(0.0, f64::max) / of.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    // (a) The BW-unaware model wildly under-predicts low-bandwidth
    // designs: for the 64x64 array it claims a minimum latency several
    // times below what any memory configuration can actually reach at
    // 128 b/cy — so it would steer the search to the min-area corner the
    // paper warns about.
    let best_unaware_64 = unaware
        .iter()
        .filter(|p| p.params.array_side == 64)
        .map(|p| p.latency)
        .fold(f64::INFINITY, f64::min);
    let best_aware_64 = aware_128
        .iter()
        .filter(|p| p.params.array_side == 64)
        .map(|p| p.latency)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_aware_64 > 3.0 * best_unaware_64,
        "the BW wall must dominate the 64x64 at 128 b/cy: unaware {best_unaware_64:.0} \
         vs aware {best_aware_64:.0}"
    );
    let _ = spread;
    // (b) At 128 b/cy the GB-write wall levels the playing field: the
    // 32x32 array's best latency matches the 64x64's within 5% — at a
    // fraction of the area, so it dominates in the latency-area space.
    fn best(set: &[(u64, f64, f64)], side: u64) -> &(u64, f64, f64) {
        set.iter().find(|(s, _, _)| *s == side).expect("present")
    }
    let (_, lat32_lo, area32) = *best(&lo, 32);
    let (_, lat64_lo, area64) = *best(&lo, 64);
    assert!(
        lat32_lo <= lat64_lo * 1.05,
        "at low BW the 32x32 must match the 64x64: {lat32_lo:.0} vs {lat64_lo:.0}"
    );
    assert!(
        area32 < area64 * 0.5,
        "…at far lower area: {area32:.3} vs {area64:.3}"
    );
    // (c) At 1024 b/cy the 64x64 array pulls clear again.
    let (_, lat32_hi, _) = *best(&hi, 32);
    let (_, lat64_hi, _) = *best(&hi, 64);
    assert!(
        lat64_hi < lat32_hi * 0.67,
        "at high BW the 64x64 must win clearly: {lat64_hi:.0} vs {lat32_hi:.0}"
    );
    // More bandwidth never hurts the per-array best latency.
    for ((s_lo, lat_lo, _), (s_hi, lat_hi, _)) in lo.iter().zip(hi.iter()) {
        assert_eq!(s_lo, s_hi);
        assert!(
            lat_hi <= lat_lo,
            "more bandwidth cannot hurt: {lat_lo} -> {lat_hi}"
        );
    }
    let _ = ua;
    println!(
        "Reproduced: the BW-unaware model under-predicts the 64x64's low-BW \n\
         latency {:.1}x (a); at 128 b/cy the 32x32 array matches the 64x64's \n\
         latency at {:.0}% of its area (b); at 1024 b/cy the 64x64 extends \n\
         the Pareto front again (c).",
        best_aware_64 / best_unaware_64,
        area32 / area64 * 100.0
    );
}
