//! **Fig. 7 (Case study 2)** — workload size vs latency: sweep the layer
//! dimensions B/K/C from 8 to 512 on the fixed case-study chip, print
//! (a) the operand composition and MAC-op count and (b) the modeled
//! latency breakdown (pre-loading / ideal compute / spatial stall /
//! temporal stall) next to the BW-unaware prediction. The paper's
//! headline: ignoring temporal stalls under-predicts by 7.4x on layer
//! (128,128,8) and 9.2x on (512,512,8).

use ulm::prelude::*;
use ulm_bench::svg::{write_svg, BarChart};
use ulm_bench::Table;

fn best_mapping(arch: &Architecture, layer: &Layer) -> Option<EvaluatedMapping> {
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    Mapper::new(arch, layer, spatial)
        .with_options(MapperOptions {
            max_exhaustive: 2_000,
            samples: 100,
            ..MapperOptions::default()
        })
        .search(Objective::Latency)
        .ok()
        .map(|r| r.best)
}

fn main() {
    let arch = presets::case_study_chip(128);
    println!("architecture: {arch}");

    // The paper varies each of B, K, C over 8..512; we use the
    // power-of-4-ish ladder and the two headline layers.
    let values = [8u64, 32, 128, 512];
    let mut layers = Vec::new();
    for &v in &values {
        layers.push((v, v, 8u64)); // output-dominant diagonal, small C
        layers.push((v, v, v)); // cubic diagonal
        layers.push((8, 8, v)); // input-channel-dominant
    }
    layers.dedup();

    let mut ta = Table::new(
        "Fig. 7(a): operand composition",
        &["(B,K,C)", "MAC ops", "W[%]", "I[%]", "O[%]", "total bits"],
    );
    let mut tb = Table::new(
        "Fig. 7(b): latency breakdown [cc]",
        &[
            "(B,K,C)",
            "preload",
            "ideal",
            "spatial stall",
            "temporal stall",
            "real latency",
            "BW-unaware",
            "ratio",
        ],
    );

    let mut headline: Vec<(String, f64)> = Vec::new();
    let mut chart_labels: Vec<String> = Vec::new();
    let mut ch_pre: Vec<f64> = Vec::new();
    let mut ch_ideal: Vec<f64> = Vec::new();
    let mut ch_spatial: Vec<f64> = Vec::new();
    let mut ch_temporal: Vec<f64> = Vec::new();
    for &(bb, kk, cc) in &layers {
        let layer = Layer::matmul(
            format!("({bb},{kk},{cc})"),
            bb,
            kk,
            cc,
            Precision::int8_out24(),
        );
        let Some(best) = best_mapping(&arch, &layer) else {
            continue;
        };
        let w = layer.tensor_bits(Operand::W) as f64;
        let i = layer.tensor_bits(Operand::I) as f64;
        let o = layer.tensor_bits(Operand::O) as f64;
        let tot = w + i + o;
        ta.row(vec![
            layer.name().to_string(),
            format!("{}", layer.total_macs()),
            format!("{:.0}", w / tot * 100.0),
            format!("{:.0}", i / tot * 100.0),
            format!("{:.0}", o / tot * 100.0),
            format!("{:.0}", tot),
        ]);

        let r = &best.latency;
        let view = MappedLayer::new(&layer, &arch, &best.mapping).expect("legal");
        let unaware = LatencyModel::bw_unaware().evaluate(&view);
        let ratio = r.cc_total / unaware.cc_total;
        tb.row(vec![
            layer.name().to_string(),
            format!("{}", r.preload),
            format!("{:.0}", r.cc_ideal),
            format!("{:.0}", r.spatial_stall),
            format!("{:.0}", r.ss_overall),
            format!("{:.0}", r.cc_total),
            format!("{:.0}", unaware.cc_total),
            format!("{ratio:.1}x"),
        ]);
        if (bb, kk, cc) == (128, 128, 8) || (bb, kk, cc) == (512, 512, 8) {
            headline.push((layer.name().to_string(), ratio));
        }
        chart_labels.push(layer.name().to_string());
        ch_pre.push(r.preload as f64);
        ch_ideal.push(r.cc_ideal);
        ch_spatial.push(r.spatial_stall.max(0.0));
        ch_temporal.push(r.ss_overall);
    }
    let mut chart = BarChart::stacked("Fig. 7(b): latency breakdown per layer", "cycles");
    chart.labels(chart_labels);
    chart.series("preload", ch_pre);
    chart.series("ideal compute", ch_ideal);
    chart.series("spatial stall", ch_spatial);
    chart.series("temporal stall", ch_temporal);
    write_svg("fig7b_breakdown", &chart.render());
    ta.print();
    ta.write_csv("fig7a_operands");
    tb.print();
    tb.write_csv("fig7b_breakdown");

    println!(
        "\nShape checks: ideal latency tracks MAC ops; real latency tracks total\n\
         data size; output-dominant layers (large B,K with C=8, 24-bit outputs)\n\
         deviate most (paper: 7.4x at (128,128,8), 9.2x at (512,512,8))."
    );
    for (name, ratio) in &headline {
        println!("  {name}: BW-unaware under-predicts by {ratio:.1}x");
        assert!(
            *ratio > 3.0,
            "output-dominant layer must show a large stall gap, got {ratio:.1}"
        );
    }
    assert_eq!(headline.len(), 2, "both headline layers must evaluate");
}
