//! **Fig. 5(c)** — model validation: the analytical latency model against
//! the discrete-event reference simulator (our stand-in for the paper's
//! taped-out 7 nm accelerator and its RTL simulation, see DESIGN.md §4)
//! on the hand-tracking workload's layers. The paper reports an average
//! accuracy of 94.3%.

use ulm::prelude::*;
use ulm_bench::svg::{write_svg, BarChart};
use ulm_bench::Table;

fn main() -> Result<(), ulm::error::UlmError> {
    let chip = presets::validation_chip();
    println!("architecture: {}", chip.arch);
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    println!(
        "spatial unrolling (Fig. 5b): {}",
        SpatialUnroll::new(chip.spatial.clone())
    );

    let layers = networks::handtracking_validation_layers();
    let mut t = Table::new(
        "Fig. 5(c): model vs cycle-level simulation, hand-tracking layers",
        &[
            "layer",
            "MAC ops",
            "model [cc]",
            "sim [cc]",
            "U_model[%]",
            "accuracy[%]",
        ],
    );

    let mut acc_sum = 0.0;
    let mut n = 0usize;
    let mut chart_labels: Vec<String> = Vec::new();
    let mut chart_model: Vec<f64> = Vec::new();
    let mut chart_sim: Vec<f64> = Vec::new();
    for layer in &layers {
        let mapper = Mapper::new(&chip.arch, layer, spatial.clone()).with_options(MapperOptions {
            max_exhaustive: 3_000,
            samples: 120,
            ..MapperOptions::default()
        });
        let result = mapper.search(Objective::Latency)?;
        let report = &result.best.latency;
        let view = MappedLayer::new(layer, &chip.arch, &result.best.mapping)?;
        let sim = Simulator::new().simulate(&view)?;
        let acc = (1.0
            - (report.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64)
            * 100.0;
        t.row(vec![
            layer.name().to_string(),
            format!("{}", layer.total_macs()),
            format!("{:.0}", report.cc_total),
            format!("{}", sim.total_cycles),
            format!("{:.1}", report.utilization * 100.0),
            format!("{acc:.1}"),
        ]);
        acc_sum += acc;
        n += 1;
        chart_labels.push(layer.name().trim_end_matches(".im2col").to_string());
        chart_model.push(report.cc_total);
        chart_sim.push(sim.total_cycles as f64);
    }
    t.print();
    t.write_csv("fig5_validation");
    let mut chart = BarChart::grouped(
        "Fig. 5(c): analytical model vs cycle-level simulation",
        "latency [cycles]",
    );
    chart.labels(chart_labels);
    chart.series("model", chart_model);
    chart.series("simulator", chart_sim);
    write_svg("fig5_validation", &chart.render());

    let mean = acc_sum / n as f64;
    println!("\naverage latency model accuracy: {mean:.1}%  (paper: 94.3%)");
    assert!(
        mean > 88.0,
        "validation accuracy should be in the paper's ballpark, got {mean:.1}%"
    );
    Ok(())
}
