//! **Bandwidth sensitivity** (extra analysis) — densify Case study 3's
//! bandwidth axis: sweep the case-study chip's GB bandwidth from 32 to
//! 2048 bit/cycle and plot mapping-optimized latency for three workload
//! characters. Shows the two regimes the paper's conclusions rest on:
//! a BW-bound slope (latency ~ 1/BW) that flattens into a compute-bound
//! plateau once `ReqBW` is met — at a workload-dependent knee.

use ulm::prelude::*;
use ulm_bench::svg::{write_svg, ScatterPlot};
use ulm_bench::Table;

fn best_latency(gb_bw: u64, layer: &Layer) -> f64 {
    let arch = presets::case_study_chip(gb_bw);
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    Mapper::new(&arch, layer, spatial)
        .with_options(MapperOptions {
            max_exhaustive: 1_000,
            samples: 60,
            ..MapperOptions::default()
        })
        .search(Objective::Latency)
        .map(|r| r.best.latency.cc_total)
        .unwrap_or(f64::NAN)
}

fn main() {
    let layers = [
        Layer::matmul("balanced (64,96,640)", 64, 96, 640, Precision::int8_out24()),
        Layer::matmul(
            "output-heavy (128,128,8)",
            128,
            128,
            8,
            Precision::int8_out24(),
        ),
        Layer::matmul("input-heavy (8,8,512)", 8, 8, 512, Precision::int8_out24()),
    ];
    let bws = [32u64, 64, 128, 256, 512, 1024, 2048];

    let mut headers = vec!["GB BW [b/cy]".to_string()];
    headers.extend(layers.iter().map(|l| l.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Latency vs GB bandwidth [cc]", &header_refs);

    let mut plot = ScatterPlot::new(
        "GB bandwidth sensitivity (mapping-optimized)",
        "GB bandwidth [bit/cycle] (log2 steps)",
        "latency [cycles]",
    );
    plot.log_y();

    let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); layers.len()];
    let mut knees = vec![None; layers.len()];
    let mut prev: Vec<f64> = vec![f64::NAN; layers.len()];
    for &bw in &bws {
        let mut row = vec![format!("{bw}")];
        for (i, layer) in layers.iter().enumerate() {
            let lat = best_latency(bw, layer);
            row.push(format!("{lat:.0}"));
            series[i].push(((bw as f64).log2(), lat));
            // Knee: the first bandwidth where doubling helped < 5%.
            if knees[i].is_none() && prev[i].is_finite() && lat > prev[i] * 0.95 {
                knees[i] = Some(bw / 2);
            }
            prev[i] = lat;
        }
        t.row(row);
    }
    t.print();
    t.write_csv("sensitivity_gb_bw");
    for (i, layer) in layers.iter().enumerate() {
        plot.class(layer.name(), series[i].clone());
    }
    write_svg("sensitivity_gb_bw", &plot.render());

    println!();
    for (i, layer) in layers.iter().enumerate() {
        match knees[i] {
            Some(k) => println!("  {:<28} knee at ~{k} bit/cycle", layer.name()),
            None => println!(
                "  {:<28} still bandwidth-bound at 2048 bit/cycle",
                layer.name()
            ),
        }
    }

    // Shape assertions: monotone non-increasing, and the output-heavy
    // layer keeps benefiting from bandwidth far beyond the balanced one.
    for (i, s) in series.iter().enumerate() {
        for w in s.windows(2) {
            assert!(
                w[1].1 <= w[0].1 * 1.001,
                "latency must not rise with bandwidth (layer {i})"
            );
        }
    }
    let gain = |s: &Vec<(f64, f64)>| s.first().unwrap().1 / s.last().unwrap().1;
    assert!(
        gain(&series[1]) > gain(&series[0]),
        "the output-heavy layer must be more bandwidth-sensitive: {:.1}x vs {:.1}x",
        gain(&series[1]),
        gain(&series[0])
    );
    println!("\nReproduced: 1/BW slope into a compute plateau, knee position set by the workload.");
}
