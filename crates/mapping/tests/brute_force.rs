//! Ground-truth validation of the mapping crate's derived quantities: a
//! brute-force loop-nest interpreter walks every temporal iteration,
//! tracks which distinct data words each memory level holds, and checks
//! `Mem_DATA`, `Mem_CC` alignment and the exact refill counts against the
//! closed forms.

use proptest::prelude::*;
use ulm_arch::presets;
use ulm_mapping::{LoopStack, MappedLayer, Mapping, OperandAlloc, SpatialUnroll};
use ulm_workload::{Dim, Layer, Operand, PerOperand, Precision};

/// The index tuple (b, k, c) addressed at temporal step `t` by the loops
/// above `bound` (lower loops enumerate within the block).
fn upper_digits(stack: &LoopStack, bound: usize, t: u64) -> Vec<(Dim, u64)> {
    let mut rem = t;
    let mut out = Vec::new();
    for (i, l) in stack.loops().iter().enumerate() {
        let d = rem % l.size;
        rem /= l.size;
        if i >= bound {
            out.push((l.dim, d));
        }
    }
    out
}

/// Distinct words of `op` resident at a level holding the innermost
/// `bound` loops, at temporal step `t`: the relevant upper digits pin a
/// region; everything below (plus spatial) enumerates within it. For a
/// matmul the word count is the product of relevant extents below.
fn region_id(layer: &Layer, op: Operand, stack: &LoopStack, bound: usize, t: u64) -> u64 {
    let rel = layer.operand_relevance(op);
    let mut id = 0u64;
    let mut mul = 1u64;
    for (dim, digit) in upper_digits(stack, bound, t) {
        if rel.get(dim).is_relevant() {
            id += digit * mul;
            // A radix larger than any loop size keeps ids unique.
            mul *= 1 << 10;
        }
    }
    id
}

fn arb_point() -> impl Strategy<Value = (Layer, Vec<(Dim, u64)>, Vec<usize>)> {
    // Small matmul layers on the toy chip with explicit W allocation.
    (1u32..3, 1u32..3, 1u32..4, 0usize..4, any::<u64>()).prop_map(
        |(bexp, kexp, cexp, cut, seed)| {
            let layer = Layer::matmul(
                "bf",
                2 << bexp,
                2 << kexp,
                2 << cexp,
                Precision::int8_acc24(),
            );
            let mut factors = Vec::new();
            for _ in 0..bexp {
                factors.push((Dim::B, 2u64));
            }
            for _ in 0..kexp {
                factors.push((Dim::K, 2));
            }
            for _ in 0..=cexp {
                factors.push((Dim::C, 2));
            }
            // Deterministic shuffle.
            let mut s = seed;
            for i in (1..factors.len()).rev() {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                factors.swap(i, j);
            }
            let cut = cut.min(factors.len());
            (layer, factors, vec![cut])
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `refill_count` equals the number of distinct-region *runs* the
    /// interpreter observes; region changes only occur at `Mem_CC`
    /// multiples.
    #[test]
    fn refill_count_matches_interpreter((layer, factors, cuts) in arb_point()) {
        let chip = presets::toy_chip();
        let stack = LoopStack::from_pairs(&factors);
        let total = stack.total_cycles();
        // Explicit W allocation at the requested cut; everything else at
        // the top. (Capacity may reject — skip those draws.)
        let cut = cuts[0].min(stack.len());
        let allocs = PerOperand::new(
            OperandAlloc::new(vec![cut, stack.len()]),
            OperandAlloc::new(vec![0, stack.len()]),
            OperandAlloc::new(vec![0, stack.len()]),
        );
        let mapping = Mapping::new(
            SpatialUnroll::new(chip.spatial.clone()),
            stack.clone(),
            allocs,
        );
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };

        for (op, bound) in [(Operand::W, cut), (Operand::I, 0), (Operand::O, 0)] {
            let level = 0usize;
            let mem_cc = view.mem_cc(op, level);
            let expected = view.refill_count(op, level);
            // Walk the nest and count region *changes* (runs).
            let mut runs = 0u64;
            let mut last = None;
            for t in 0..total {
                let region = region_id(&layer, op, &stack, bound, t);
                if last != Some(region) {
                    runs += 1;
                    last = Some(region);
                    // A change may only happen on a period boundary.
                    prop_assert_eq!(
                        t % mem_cc, 0,
                        "region change off-period for {} at t={}", op, t
                    );
                }
            }
            prop_assert_eq!(
                runs, expected,
                "refill_count mismatch for {} (bound {})", op, bound
            );
        }
    }

    /// `Mem_DATA` for a matmul equals the product of the operand-relevant
    /// extents at/below the level (spatial included).
    #[test]
    fn mem_data_matches_extent_product((layer, factors, cuts) in arb_point()) {
        let chip = presets::toy_chip();
        let stack = LoopStack::from_pairs(&factors);
        let cut = cuts[0].min(stack.len());
        let allocs = PerOperand::new(
            OperandAlloc::new(vec![cut, stack.len()]),
            OperandAlloc::new(vec![0, stack.len()]),
            OperandAlloc::new(vec![0, stack.len()]),
        );
        let mapping = Mapping::new(
            SpatialUnroll::new(chip.spatial.clone()),
            stack.clone(),
            allocs,
        );
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        for op in Operand::all() {
            let rel = layer.operand_relevance(op);
            for level in 0..2 {
                let ext = view.extents_at(op, level);
                let expected: u64 = ulm_workload::ALL_DIMS
                    .iter()
                    .filter(|d| rel.get(**d).is_relevant())
                    .map(|d| ext[*d])
                    .product();
                prop_assert_eq!(view.mem_data_words(op, level), expected);
            }
        }
    }
}
