//! The [`Mapping`] triple and mapping legality errors.

use crate::{LoopStack, OperandAlloc, SpatialUnroll};
use std::error::Error;
use std::fmt;
use ulm_arch::Architecture;
use ulm_workload::{Dim, Layer, Operand, PerOperand};

/// Reasons a mapping is illegal for a given layer/architecture pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// The spatial unrolling needs more MACs than the array has.
    SpatialOverflow {
        /// MACs the unrolling occupies.
        product: u64,
        /// MACs available.
        macs: u64,
    },
    /// An operand's allocation has a different level count than its
    /// memory chain.
    LevelsMismatch {
        /// The operand.
        operand: Operand,
        /// Levels in the architecture chain.
        expected: usize,
        /// Levels in the allocation.
        got: usize,
    },
    /// An operand's allocation does not place every loop.
    UnallocatedLoops {
        /// The operand.
        operand: Operand,
        /// Loops its top level reaches.
        allocated: usize,
        /// Loops in the stack.
        total: usize,
    },
    /// The mapping iterates a dimension fewer times than the layer needs.
    Coverage {
        /// The under-covered dimension.
        dim: Dim,
        /// The layer's bound.
        required: u64,
        /// spatial x temporal extent provided.
        mapped: u64,
    },
    /// A memory level cannot hold the data the mapping assigns to it.
    CapacityExceeded {
        /// The memory's name.
        memory: String,
        /// Bits the mapping needs resident.
        needed_bits: u64,
        /// Mapper-visible capacity.
        available_bits: u64,
    },
    /// Greedy allocation failed: a level cannot hold even the block
    /// arriving from the level below.
    InfeasibleLevel {
        /// The operand being allocated.
        operand: Operand,
        /// The memory's name.
        memory: String,
        /// Bits of the incoming block.
        needed_bits: u64,
        /// Mapper-visible capacity (after sharing).
        available_bits: u64,
    },
}

impl fmt::Display for MappingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MappingError::SpatialOverflow { product, macs } => {
                write!(
                    f,
                    "spatial unrolling needs {product} MACs but the array has {macs}"
                )
            }
            MappingError::LevelsMismatch {
                operand,
                expected,
                got,
            } => write!(
                f,
                "operand {operand} allocation has {got} levels, chain has {expected}"
            ),
            MappingError::UnallocatedLoops {
                operand,
                allocated,
                total,
            } => write!(
                f,
                "operand {operand} allocation covers {allocated} of {total} loops"
            ),
            MappingError::Coverage {
                dim,
                required,
                mapped,
            } => write!(
                f,
                "dimension {dim} needs {required} iterations, mapping provides {mapped}"
            ),
            MappingError::CapacityExceeded {
                memory,
                needed_bits,
                available_bits,
            } => write!(
                f,
                "memory `{memory}` holds {needed_bits} bits but offers {available_bits}"
            ),
            MappingError::InfeasibleLevel {
                operand,
                memory,
                needed_bits,
                available_bits,
            } => write!(
                f,
                "operand {operand}: block of {needed_bits} bits cannot enter memory \
                 `{memory}` ({available_bits} bits visible)"
            ),
        }
    }
}

impl Error for MappingError {}

/// A complete mapping: spatial unrolling + temporal loop stack + one
/// loop-to-level allocation per operand.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mapping {
    spatial: SpatialUnroll,
    stack: LoopStack,
    allocs: PerOperand<OperandAlloc>,
}

impl Mapping {
    /// Assembles a mapping from explicit parts. Structural consistency
    /// against a layer/architecture is checked by
    /// [`MappedLayer::new`](crate::MappedLayer::new).
    pub fn new(spatial: SpatialUnroll, stack: LoopStack, allocs: PerOperand<OperandAlloc>) -> Self {
        Self {
            spatial,
            stack,
            allocs,
        }
    }

    /// Builds a mapping by allocating loops to memory levels greedily for
    /// each operand: every level takes the longest loop prefix whose data
    /// footprint fits its (shared-capacity-adjusted) mapper-visible size;
    /// the top level takes the rest.
    ///
    /// Greedy maximal allocation is optimal under this model — holding
    /// data lower never increases traffic — and it is *canonical*: a loop
    /// irrelevant to the operand costs no capacity, so it is absorbed into
    /// the lowest level it can sit above, which keeps `Z` equal to the
    /// true refill count.
    ///
    /// # Errors
    ///
    /// Returns [`MappingError::InfeasibleLevel`] when some level cannot
    /// hold even the block the level below requires.
    pub fn with_greedy_alloc(
        arch: &Architecture,
        layer: &Layer,
        spatial: SpatialUnroll,
        stack: LoopStack,
    ) -> Result<Self, MappingError> {
        let h = arch.hierarchy();
        let allocs = PerOperand::from_fn(|_| OperandAlloc::flat(0));
        let mut allocs = allocs;
        for op in Operand::all() {
            let chain = h.chain(op);
            let mut bounds = Vec::with_capacity(chain.len());
            let mut prev = 0usize;
            for (lvl, &mid) in chain.iter().enumerate() {
                let mem = h.mem(mid);
                let is_top = lvl + 1 == chain.len();
                if is_top {
                    bounds.push(stack.len());
                    break;
                }
                let sharers = h.served_operands(mid).len() as u64;
                let cap = mem.mapper_capacity_bits() / sharers;
                let data_bits = |p: usize| -> u64 {
                    let mut ext = spatial.extents();
                    for (d, s) in stack.prefix_extents(p).iter() {
                        ext.multiply(d, s);
                    }
                    layer.data_words(op, &ext) * layer.precision().bits(op)
                };
                if data_bits(prev) > cap {
                    return Err(MappingError::InfeasibleLevel {
                        operand: op,
                        memory: mem.name().to_string(),
                        needed_bits: data_bits(prev),
                        available_bits: cap,
                    });
                }
                let mut p = prev;
                while p < stack.len() && data_bits(p + 1) <= cap {
                    p += 1;
                }
                bounds.push(p);
                prev = p;
            }
            *allocs.get_mut(op) = OperandAlloc::new(bounds);
        }
        Ok(Self {
            spatial,
            stack,
            allocs,
        })
    }

    /// Rebuilds `self` in place as the greedy allocation of `ordering`
    /// (innermost first) over the existing spatial unrolling, reusing
    /// every internal buffer — the allocation-free counterpart of
    /// [`with_greedy_alloc`](Self::with_greedy_alloc) used by the
    /// mapper's fast search path.
    ///
    /// `prefix_ext[p]` must hold the combined spatial+temporal extents of
    /// the innermost `p` loops (so `prefix_ext[0]` is the spatial extents
    /// alone), and `ordering` must contain no size-1 loops so that loop
    /// indices line up with `prefix_ext` entries.
    ///
    /// Returns `false` when some level cannot hold even the block
    /// arriving from the level below (the condition `with_greedy_alloc`
    /// reports as [`MappingError::InfeasibleLevel`]); the mapping
    /// contents are unspecified afterwards until the next successful
    /// reassignment.
    pub fn reassign_greedy(
        &mut self,
        arch: &Architecture,
        layer: &Layer,
        ordering: &[(Dim, u64)],
        prefix_ext: &[ulm_workload::DimSizes],
    ) -> bool {
        debug_assert!(ordering.iter().all(|&(_, s)| s > 1));
        debug_assert_eq!(prefix_ext.len(), ordering.len() + 1);
        self.stack.assign_from_pairs(ordering);
        let n = self.stack.len();
        let h = arch.hierarchy();
        for op in Operand::all() {
            let chain = h.chain(op);
            let alloc = self.allocs.get_mut(op);
            alloc.clear();
            let mut prev = 0usize;
            for (lvl, &mid) in chain.iter().enumerate() {
                let mem = h.mem(mid);
                let is_top = lvl + 1 == chain.len();
                if is_top {
                    alloc.push_bound(n);
                    break;
                }
                let sharers = h.served_operand_count(mid) as u64;
                let cap = mem.mapper_capacity_bits() / sharers;
                let data_bits =
                    |p: usize| layer.data_words(op, &prefix_ext[p]) * layer.precision().bits(op);
                if data_bits(prev) > cap {
                    return false;
                }
                let mut p = prev;
                while p < n && data_bits(p + 1) <= cap {
                    p += 1;
                }
                alloc.push_bound(p);
                prev = p;
            }
        }
        true
    }

    /// The spatial unrolling.
    pub fn spatial(&self) -> &SpatialUnroll {
        &self.spatial
    }

    /// The temporal loop stack (innermost first).
    pub fn stack(&self) -> &LoopStack {
        &self.stack
    }

    /// The per-operand loop-to-level allocations.
    pub fn allocs(&self) -> &PerOperand<OperandAlloc> {
        &self.allocs
    }

    /// The allocation of one operand.
    pub fn alloc(&self, op: Operand) -> &OperandAlloc {
        self.allocs.get(op)
    }
}

impl fmt::Display for Mapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spatial[{}] temporal[{}]", self.spatial, self.stack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoopStack, SpatialUnroll};
    use ulm_arch::presets;
    use ulm_workload::Precision;

    #[test]
    fn greedy_alloc_fills_low_levels_first() {
        let chip = presets::toy_chip();
        // Toy regs: W-Reg/I-Reg hold 2 distinct words (4 regs, 2x repl.).
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        // C8 innermost, then B2, K2.
        let stack = LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let m = Mapping::with_greedy_alloc(&chip.arch, &layer, spatial, stack).expect("fits");
        // W at regs: spatial W words = K2 = 2 -> adding C8 would need 16
        // words > 2, so the reg level holds no temporal loop for W.
        assert_eq!(m.alloc(Operand::W).upper(0), 0);
        // O at regs: spatial O words = K2*B2 = 4 > capacity 4*24b? The
        // O-Reg holds 4 words, C8 is irrelevant to O (free), B2/K2 grow
        // the footprint beyond 4 -> bound stops after absorbing C8.
        assert_eq!(m.alloc(Operand::O).upper(0), 1);
        // Top level takes everything.
        assert_eq!(m.alloc(Operand::W).top(), 3);
        assert_eq!(m.alloc(Operand::O).top(), 3);
    }

    #[test]
    fn greedy_alloc_absorbs_irrelevant_loops() {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        // B2 innermost: irrelevant to W, so W-Reg absorbs it for free.
        let stack = LoopStack::from_pairs(&[(Dim::B, 2), (Dim::C, 8), (Dim::K, 2)]);
        let m = Mapping::with_greedy_alloc(&chip.arch, &layer, spatial, stack).expect("fits");
        assert_eq!(m.alloc(Operand::W).upper(0), 1);
    }

    #[test]
    fn infeasible_level_reported() {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        // Unroll nothing spatially except an enormous K: W spatial block
        // alone (K=4 words with K4 unroll... ) — instead make the reg
        // level impossible by unrolling OX on a conv-less matmul? Simplest:
        // spatial K4 x B4 does not exceed MACs=4? It does; use a layer
        // whose spatial block exceeds the reg: spatial K2|B2 with huge
        // per-word precision.
        let fat = Layer::matmul("fat", 4, 4, 8, Precision::uniform(64));
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let stack = LoopStack::from_pairs(&[(Dim::C, 8)]);
        let err = Mapping::with_greedy_alloc(&chip.arch, &fat, spatial, stack).unwrap_err();
        assert!(matches!(err, MappingError::InfeasibleLevel { .. }), "{err}");
        let _ = layer;
    }

    #[test]
    fn display_mentions_both_parts() {
        let m = Mapping::new(
            SpatialUnroll::new(vec![(Dim::K, 2)]),
            LoopStack::from_pairs(&[(Dim::C, 8)]),
            PerOperand::from_fn(|_| OperandAlloc::flat(1)),
        );
        let s = m.to_string();
        assert!(s.contains("K 2") && s.contains("C 8"), "{s}");
    }
}
