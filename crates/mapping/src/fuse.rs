//! Depth-first fusion: segment descriptors and residency tables.
//!
//! A [`FusedSegment`] names 2+ consecutive layers whose intermediate
//! tensors stay pinned in a local buffer level instead of making the
//! round trip through the backing store: the producer's output tiles are
//! written into the pin memory and consumed in place by the next layer.
//! [`FusedSegment::residency`] validates the segment against a network
//! and an architecture and emits a [`SegmentResidency`] table — one
//! [`EdgeResidency`] row per fused edge — from which every consumer
//! (lowering, energy accumulation, simulator scheduling) derives the
//! same residency pins, so they all price the elided transfers from one
//! source of truth.

use std::error::Error;
use std::fmt;
use ulm_arch::{Architecture, MemoryId};
use ulm_workload::{Layer, Operand};

/// A depth-first fused segment: an ordered chain of layer names plus the
/// memory level the intermediate tensors are pinned in.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FusedSegment {
    /// The fused layers, in execution order (2+ names).
    layers: Vec<String>,
    /// Name of the memory holding the intermediates.
    pin: String,
}

impl FusedSegment {
    /// A segment fusing `layers` (execution order) with intermediates
    /// pinned in the memory named `pin`.
    pub fn new(layers: Vec<String>, pin: impl Into<String>) -> Self {
        Self {
            layers,
            pin: pin.into(),
        }
    }

    /// The fused layer names, in execution order.
    pub fn layers(&self) -> &[String] {
        &self.layers
    }

    /// The pin memory's name.
    pub fn pin(&self) -> &str {
        &self.pin
    }

    /// Validates the segment against a network and an architecture and
    /// builds its residency table.
    ///
    /// Checks, in order: the segment names 2+ layers; every name exists
    /// in `layers`; the named layers are consecutive in network order;
    /// the pin memory exists; each fused edge's tensors agree in element
    /// count (reshapes are fine — a words-level identity is all fusion
    /// needs); the pin memory appears in the producer's output chain and
    /// the consumer's input chain; and the combined intermediate
    /// footprint fits the pin memory's capacity (backing stores are
    /// exempt, which makes a top-level pin a legal — and degenerate —
    /// fusion that elides nothing).
    ///
    /// # Errors
    ///
    /// Returns the first failing [`FuseError`] check.
    pub fn residency(
        &self,
        arch: &Architecture,
        layers: &[Layer],
    ) -> Result<SegmentResidency, FuseError> {
        if self.layers.len() < 2 {
            return Err(FuseError::TooShort {
                len: self.layers.len(),
            });
        }
        let h = arch.hierarchy();
        let pin = h.find(&self.pin).ok_or_else(|| FuseError::UnknownMemory {
            mem: self.pin.clone(),
        })?;
        let pin_mem = h.mem(pin);

        let mut indices: Vec<usize> = Vec::with_capacity(self.layers.len());
        for name in &self.layers {
            let idx = layers
                .iter()
                .position(|l| l.name() == name.as_str())
                .ok_or_else(|| FuseError::UnknownLayer {
                    layer: name.clone(),
                })?;
            if let Some(&prev) = indices.last() {
                if idx != prev + 1 {
                    return Err(FuseError::NotConsecutive {
                        producer: layers[prev].name().to_string(),
                        consumer: name.clone(),
                    });
                }
            }
            indices.push(idx);
        }

        let level_of = |layer: &Layer, op: Operand| -> Result<usize, FuseError> {
            h.chain(op)
                .iter()
                .position(|&m| m == pin)
                .ok_or_else(|| FuseError::NotInChain {
                    layer: layer.name().to_string(),
                    operand: op,
                    mem: self.pin.clone(),
                })
        };

        let mut edges = Vec::with_capacity(indices.len() - 1);
        for pair in indices.windows(2) {
            let (producer, consumer) = (&layers[pair[0]], &layers[pair[1]]);
            let produced = producer.tensor_words(Operand::O);
            let consumed = consumer.tensor_words(Operand::I);
            if produced != consumed {
                return Err(FuseError::ShapeMismatch {
                    producer: producer.name().to_string(),
                    consumer: consumer.name().to_string(),
                    produced,
                    consumed,
                });
            }
            edges.push(EdgeResidency {
                producer: producer.name().to_string(),
                consumer: consumer.name().to_string(),
                producer_index: pair[0],
                words: produced,
                // The intermediate is a finished tensor (fully
                // accumulated before the consumer reads it), so it lives
                // at final output precision.
                bits: produced * producer.precision().output_bits(true),
                producer_level: level_of(producer, Operand::O)?,
                consumer_level: level_of(consumer, Operand::I)?,
            });
        }

        let residency = SegmentResidency {
            pin,
            pin_name: self.pin.clone(),
            capacity_bits: pin_mem.capacity_bits(),
            first: indices[0],
            edges,
        };
        // Conservative co-residency: in a 3+-layer chain, one edge is
        // being consumed while the next is being produced, so all
        // intermediates are budgeted together.
        if !pin_mem.is_backing_store() && residency.footprint_bits() > pin_mem.capacity_bits() {
            return Err(FuseError::DoesNotFit {
                mem: self.pin.clone(),
                needed_bits: residency.footprint_bits(),
                capacity_bits: pin_mem.capacity_bits(),
            });
        }
        Ok(residency)
    }
}

/// One fused producer→consumer edge of a [`SegmentResidency`] table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EdgeResidency {
    /// The producing layer's name.
    pub producer: String,
    /// The consuming layer's name.
    pub consumer: String,
    /// Index of the producer in the network's layer list (the consumer
    /// is at `producer_index + 1`).
    pub producer_index: usize,
    /// Intermediate tensor size in words.
    pub words: u64,
    /// Intermediate footprint in bits (final output precision).
    pub bits: u64,
    /// The pin memory's level in the producer's output chain.
    pub producer_level: usize,
    /// The pin memory's level in the consumer's input chain.
    pub consumer_level: usize,
}

/// The validated residency table of one fused segment.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SegmentResidency {
    /// The pin memory.
    pub pin: MemoryId,
    /// The pin memory's name.
    pub pin_name: String,
    /// The pin memory's physical capacity in bits.
    pub capacity_bits: u64,
    /// Network index of the segment's first layer.
    pub first: usize,
    /// One row per fused edge, in execution order.
    pub edges: Vec<EdgeResidency>,
}

impl SegmentResidency {
    /// Combined intermediate footprint in bits (all edges co-resident).
    pub fn footprint_bits(&self) -> u64 {
        self.edges.iter().map(|e| e.bits).sum()
    }

    /// Network index one past the segment's last layer.
    pub fn end(&self) -> usize {
        self.first + self.edges.len() + 1
    }

    /// True when the network's `index`-th layer belongs to this segment.
    pub fn contains(&self, index: usize) -> bool {
        (self.first..self.end()).contains(&index)
    }

    /// The residency pins (`[W, I, O]`, by operand index) the network's
    /// `index`-th layer must be lowered with: its output is pinned when
    /// it produces a fused edge, its input when it consumes one. All
    /// `None` for layers outside the segment.
    pub fn pins_for(&self, index: usize) -> [Option<usize>; 3] {
        let mut pins = [None; 3];
        for e in &self.edges {
            if e.producer_index == index {
                pins[Operand::O.index()] = Some(e.producer_level);
            }
            if e.producer_index + 1 == index {
                pins[Operand::I.index()] = Some(e.consumer_level);
            }
        }
        pins
    }
}

/// Why a [`FusedSegment`] cannot be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseError {
    /// The segment names fewer than two layers.
    TooShort {
        /// Number of layers named.
        len: usize,
    },
    /// A named layer is not in the network.
    UnknownLayer {
        /// The unknown name.
        layer: String,
    },
    /// Two fused layers are not adjacent in network order.
    NotConsecutive {
        /// The earlier layer.
        producer: String,
        /// The layer that should directly follow it.
        consumer: String,
    },
    /// The pin memory is not in the architecture.
    UnknownMemory {
        /// The unknown memory name.
        mem: String,
    },
    /// A fused edge's tensors disagree in element count.
    ShapeMismatch {
        /// The producing layer.
        producer: String,
        /// The consuming layer.
        consumer: String,
        /// Words the producer emits.
        produced: u64,
        /// Words the consumer reads.
        consumed: u64,
    },
    /// The pin memory does not serve the operand that must live there.
    NotInChain {
        /// The affected layer.
        layer: String,
        /// The operand needing residency.
        operand: Operand,
        /// The pin memory's name.
        mem: String,
    },
    /// The combined intermediate footprint exceeds the pin capacity.
    DoesNotFit {
        /// The pin memory's name.
        mem: String,
        /// Bits required.
        needed_bits: u64,
        /// Bits available.
        capacity_bits: u64,
    },
}

impl fmt::Display for FuseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuseError::TooShort { len } => {
                write!(f, "a fused segment needs at least 2 layers, got {len}")
            }
            FuseError::UnknownLayer { layer } => {
                write!(f, "fused segment names unknown layer `{layer}`")
            }
            FuseError::NotConsecutive { producer, consumer } => write!(
                f,
                "fused layers `{producer}` and `{consumer}` are not consecutive in the network"
            ),
            FuseError::UnknownMemory { mem } => {
                write!(f, "fused segment pins unknown memory `{mem}`")
            }
            FuseError::ShapeMismatch {
                producer,
                consumer,
                produced,
                consumed,
            } => write!(
                f,
                "fused edge `{producer}`->`{consumer}` moves {produced} words \
                 but the consumer reads {consumed}"
            ),
            FuseError::NotInChain {
                layer,
                operand,
                mem,
            } => write!(
                f,
                "pin memory `{mem}` does not serve operand {operand} of layer `{layer}`"
            ),
            FuseError::DoesNotFit {
                mem,
                needed_bits,
                capacity_bits,
            } => write!(
                f,
                "fused intermediates need {needed_bits} bits but pin memory \
                 `{mem}` holds {capacity_bits}"
            ),
        }
    }
}

impl Error for FuseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_workload::Precision;

    fn two_matmuls() -> Vec<Layer> {
        vec![
            Layer::matmul("a", 4, 8, 8, Precision::int8_acc24()),
            Layer::matmul("b", 4, 8, 8, Precision::int8_acc24()),
            Layer::matmul("c", 4, 8, 8, Precision::int8_acc24()),
        ]
    }

    #[test]
    fn valid_segment_builds_residency_table() {
        let chip = presets::toy_chip();
        let seg = FusedSegment::new(vec!["a".into(), "b".into()], "LB");
        let res = seg.residency(&chip.arch, &two_matmuls()).unwrap();
        assert_eq!(res.pin_name, "LB");
        assert_eq!(res.edges.len(), 1);
        // a emits 4x8 outputs at 8 bits final.
        assert_eq!(res.edges[0].words, 32);
        assert_eq!(res.edges[0].bits, 32 * 8);
        assert_eq!(res.footprint_bits(), 32 * 8);
        // LB is the top (level 1) of every toy chain.
        assert_eq!(res.edges[0].producer_level, 1);
        assert_eq!(res.edges[0].consumer_level, 1);
        assert!(res.contains(0) && res.contains(1) && !res.contains(2));
        // Producer pins O, consumer pins I.
        assert_eq!(res.pins_for(0), [None, None, Some(1)]);
        assert_eq!(res.pins_for(1), [None, Some(1), None]);
        assert_eq!(res.pins_for(2), [None, None, None]);
    }

    #[test]
    fn three_layer_chain_pins_middle_layer_both_ways() {
        let chip = presets::toy_chip();
        let seg = FusedSegment::new(vec!["a".into(), "b".into(), "c".into()], "LB");
        let res = seg.residency(&chip.arch, &two_matmuls()).unwrap();
        assert_eq!(res.edges.len(), 2);
        assert_eq!(res.pins_for(1), [None, Some(1), Some(1)]);
        assert_eq!(res.footprint_bits(), 2 * 32 * 8);
    }

    #[test]
    fn validation_errors_fire_in_order() {
        let chip = presets::toy_chip();
        let layers = two_matmuls();
        let short = FusedSegment::new(vec!["a".into()], "LB");
        assert!(matches!(
            short.residency(&chip.arch, &layers),
            Err(FuseError::TooShort { len: 1 })
        ));
        let unknown = FusedSegment::new(vec!["a".into(), "zz".into()], "LB");
        assert!(matches!(
            unknown.residency(&chip.arch, &layers),
            Err(FuseError::UnknownLayer { .. })
        ));
        let gap = FusedSegment::new(vec!["a".into(), "c".into()], "LB");
        assert!(matches!(
            gap.residency(&chip.arch, &layers),
            Err(FuseError::NotConsecutive { .. })
        ));
        let nomem = FusedSegment::new(vec!["a".into(), "b".into()], "HBM3");
        assert!(matches!(
            nomem.residency(&chip.arch, &layers),
            Err(FuseError::UnknownMemory { .. })
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let chip = presets::toy_chip();
        let layers = vec![
            Layer::matmul("a", 4, 8, 8, Precision::int8_acc24()),
            Layer::matmul("b", 4, 8, 16, Precision::int8_acc24()),
        ];
        let seg = FusedSegment::new(vec!["a".into(), "b".into()], "LB");
        assert!(matches!(
            seg.residency(&chip.arch, &layers),
            Err(FuseError::ShapeMismatch {
                produced: 32,
                consumed: 64,
                ..
            })
        ));
    }

    #[test]
    fn backing_store_pin_is_exempt_from_capacity() {
        // The toy chip's LB is its backing store: pinning there is the
        // degenerate fusion that elides nothing, and must stay legal no
        // matter how big the intermediate is.
        let chip = presets::toy_chip();
        let layers = vec![
            Layer::matmul("a", 256, 512, 8, Precision::int8_acc24()),
            Layer::matmul("b", 256, 8, 512, Precision::int8_acc24()),
        ];
        let seg = FusedSegment::new(vec!["a".into(), "b".into()], "LB");
        let res = seg.residency(&chip.arch, &layers).unwrap();
        assert!(res.footprint_bits() > res.capacity_bits);
    }

    #[test]
    fn oversized_intermediates_are_rejected() {
        // On the fusion chip the LB is a real (non-backing) buffer, so
        // the co-residency budget is enforced.
        let chip = presets::fusion_chip();
        let layers = vec![
            Layer::matmul("a", 256, 512, 8, Precision::int8_acc24()),
            Layer::matmul("b", 256, 8, 512, Precision::int8_acc24()),
        ];
        let seg = FusedSegment::new(vec!["a".into(), "b".into()], "LB");
        match seg.residency(&chip.arch, &layers) {
            Err(FuseError::DoesNotFit {
                needed_bits,
                capacity_bits,
                ..
            }) => assert!(needed_bits > capacity_bits),
            other => panic!("expected DoesNotFit, got {other:?}"),
        }
    }
}
