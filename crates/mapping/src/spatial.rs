//! Spatial unrolling: loop dimensions parallelized across the MAC array.

use std::fmt;
use ulm_workload::{Dim, DimSizes};

/// The spatial mapping: an ordered list of `(dim, factor)` unrolls whose
/// product is the number of MACs actually used each cycle.
///
/// The paper writes these as e.g. `K 16 | B 8 | C 2`.
///
/// # Example
///
/// ```
/// use ulm_mapping::SpatialUnroll;
/// use ulm_workload::Dim;
///
/// let s = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
/// assert_eq!(s.product(), 256);
/// assert_eq!(s.extent(Dim::K), 16);
/// assert_eq!(s.extent(Dim::OX), 1);
/// assert_eq!(s.to_string(), "K 16 | B 8 | C 2");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SpatialUnroll {
    factors: Vec<(Dim, u64)>,
}

impl SpatialUnroll {
    /// Builds a spatial unrolling from `(dim, factor)` pairs. Unit factors
    /// are dropped; repeated dims are allowed (their factors multiply).
    ///
    /// # Panics
    ///
    /// Panics if any factor is zero.
    pub fn new(factors: Vec<(Dim, u64)>) -> Self {
        assert!(
            factors.iter().all(|&(_, f)| f > 0),
            "spatial unroll factors must be positive"
        );
        Self {
            factors: factors.into_iter().filter(|&(_, f)| f > 1).collect(),
        }
    }

    /// No spatial parallelism (a single MAC).
    pub fn unit() -> Self {
        Self { factors: vec![] }
    }

    /// The unroll pairs in declaration order.
    pub fn factors(&self) -> &[(Dim, u64)] {
        &self.factors
    }

    /// Product of all factors: MACs occupied per cycle.
    pub fn product(&self) -> u64 {
        self.factors.iter().map(|&(_, f)| f).product()
    }

    /// Total unroll factor along `dim` (1 if not unrolled).
    pub fn extent(&self, dim: Dim) -> u64 {
        self.factors
            .iter()
            .filter(|&&(d, _)| d == dim)
            .map(|&(_, f)| f)
            .product()
    }

    /// All per-dimension extents as a [`DimSizes`].
    pub fn extents(&self) -> DimSizes {
        let mut e = DimSizes::ones();
        for &(d, f) in &self.factors {
            e.multiply(d, f);
        }
        e
    }

    /// Fraction of an array of `num_macs` MACs this unrolling occupies.
    pub fn utilization(&self, num_macs: u64) -> f64 {
        self.product() as f64 / num_macs as f64
    }
}

impl fmt::Display for SpatialUnroll {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return write!(f, "(none)");
        }
        let parts: Vec<String> = self
            .factors
            .iter()
            .map(|(d, n)| format!("{d} {n}"))
            .collect();
        write!(f, "{}", parts.join(" | "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_and_extents() {
        let s = SpatialUnroll::new(vec![(Dim::K, 4), (Dim::B, 2), (Dim::K, 2)]);
        assert_eq!(s.product(), 16);
        assert_eq!(s.extent(Dim::K), 8);
        assert_eq!(s.extent(Dim::B), 2);
        assert_eq!(s.extents()[Dim::K], 8);
    }

    #[test]
    fn unit_factors_dropped() {
        let s = SpatialUnroll::new(vec![(Dim::K, 1), (Dim::B, 2)]);
        assert_eq!(s.factors().len(), 1);
        assert_eq!(s.product(), 2);
    }

    #[test]
    fn utilization_fraction() {
        let s = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8)]);
        assert!((s.utilization(256) - 0.5).abs() < 1e-12);
        assert!((SpatialUnroll::unit().utilization(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_factor_rejected() {
        let _ = SpatialUnroll::new(vec![(Dim::K, 0)]);
    }
}
