//! The ordered temporal loop stack.

use std::fmt;
use ulm_workload::{Dim, DimSizes};

/// One temporal for-loop: a dimension iterated `size` times.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct TemporalLoop {
    /// The loop dimension.
    pub dim: Dim,
    /// The loop bound (iteration count).
    pub size: u64,
}

impl TemporalLoop {
    /// Builds a loop.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(dim: Dim, size: u64) -> Self {
        assert!(size > 0, "temporal loop size must be positive");
        Self { dim, size }
    }
}

impl fmt::Display for TemporalLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.dim, self.size)
    }
}

/// The global ordered temporal loop stack, **innermost loop first**.
///
/// All operands share one stack; their [`OperandAlloc`](crate::OperandAlloc)s
/// cut it into per-level ranges at (possibly) different positions. Because
/// every `Mem_CC` is a prefix product of this single stack, any two periods
/// divide one another — the property the periodic-window union math
/// exploits.
///
/// # Example
///
/// ```
/// use ulm_mapping::LoopStack;
/// use ulm_workload::Dim;
///
/// let s = LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 4), (Dim::K, 2)]);
/// assert_eq!(s.total_cycles(), 64);
/// assert_eq!(s.prefix_cycles(2), 32);
/// assert_eq!(s.extent(Dim::B), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct LoopStack {
    loops: Vec<TemporalLoop>,
}

impl LoopStack {
    /// Builds a stack from loops, innermost first. Size-1 loops are
    /// dropped (they are no-ops for every derived quantity).
    pub fn new(loops: Vec<TemporalLoop>) -> Self {
        Self {
            loops: loops.into_iter().filter(|l| l.size > 1).collect(),
        }
    }

    /// Builds a stack from `(dim, size)` pairs, innermost first.
    pub fn from_pairs(pairs: &[(Dim, u64)]) -> Self {
        Self::new(
            pairs
                .iter()
                .map(|&(d, s)| TemporalLoop::new(d, s))
                .collect(),
        )
    }

    /// An empty stack (single-iteration nest).
    pub fn empty() -> Self {
        Self { loops: vec![] }
    }

    /// Replaces the stack contents from `(dim, size)` pairs (innermost
    /// first) in place, reusing the existing buffer. Size-1 loops are
    /// dropped, as in [`from_pairs`](Self::from_pairs).
    pub fn assign_from_pairs(&mut self, pairs: &[(Dim, u64)]) {
        self.loops.clear();
        self.loops.extend(
            pairs
                .iter()
                .filter(|&&(_, s)| s > 1)
                .map(|&(d, s)| TemporalLoop::new(d, s)),
        );
    }

    /// The loops, innermost first.
    pub fn loops(&self) -> &[TemporalLoop] {
        &self.loops
    }

    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// True if the stack has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Product of all loop sizes: the temporal iteration count, which is
    /// the computation-phase latency when the array never stalls
    /// (`CC_spatial`, Fig. 1b scenario 2).
    pub fn total_cycles(&self) -> u64 {
        self.loops.iter().map(|l| l.size).product()
    }

    /// Product of the innermost `p` loop sizes.
    ///
    /// # Panics
    ///
    /// Panics if `p > len()`.
    pub fn prefix_cycles(&self, p: usize) -> u64 {
        self.loops[..p].iter().map(|l| l.size).product()
    }

    /// Per-dimension extents of the innermost `p` loops.
    pub fn prefix_extents(&self, p: usize) -> DimSizes {
        let mut e = DimSizes::ones();
        for l in &self.loops[..p] {
            e.multiply(l.dim, l.size);
        }
        e
    }

    /// Total iteration count along `dim` over the whole stack.
    pub fn extent(&self, dim: Dim) -> u64 {
        self.loops
            .iter()
            .filter(|l| l.dim == dim)
            .map(|l| l.size)
            .product()
    }
}

impl fmt::Display for LoopStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.loops.is_empty() {
            return write!(f, "(empty)");
        }
        // Outermost first, like a written loop nest.
        let parts: Vec<String> = self.loops.iter().rev().map(|l| l.to_string()).collect();
        write!(f, "{}", parts.join(" / "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn products_and_prefixes() {
        let s = LoopStack::from_pairs(&[(Dim::C, 3), (Dim::K, 5), (Dim::C, 2)]);
        assert_eq!(s.total_cycles(), 30);
        assert_eq!(s.prefix_cycles(0), 1);
        assert_eq!(s.prefix_cycles(1), 3);
        assert_eq!(s.prefix_cycles(3), 30);
        assert_eq!(s.extent(Dim::C), 6);
        assert_eq!(s.extent(Dim::K), 5);
        assert_eq!(s.prefix_extents(2)[Dim::K], 5);
        assert_eq!(s.prefix_extents(2)[Dim::C], 3);
    }

    #[test]
    fn unit_loops_dropped() {
        let s = LoopStack::from_pairs(&[(Dim::B, 1), (Dim::K, 4), (Dim::C, 1)]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.total_cycles(), 4);
    }

    #[test]
    fn empty_stack_is_one_cycle() {
        let s = LoopStack::empty();
        assert!(s.is_empty());
        assert_eq!(s.total_cycles(), 1);
        assert_eq!(s.to_string(), "(empty)");
    }

    #[test]
    fn display_is_outermost_first() {
        let s = LoopStack::from_pairs(&[(Dim::C, 8), (Dim::K, 2)]);
        assert_eq!(s.to_string(), "K 2 / C 8");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_loop_rejected() {
        let _ = TemporalLoop::new(Dim::B, 0);
    }
}
