//! Mapping (dataflow) representation and derived per-operand quantities.
//!
//! A mapping binds a DNN layer to an architecture (the *M* of AHM):
//!
//! * a [`SpatialUnroll`] — which loop dimensions are parallelized across
//!   the MAC array and by how much;
//! * a [`LoopStack`] — the ordered temporal loops (innermost first) that
//!   the array iterates through;
//! * one [`OperandAlloc`] per operand — which contiguous range of the
//!   stack each memory level owns, i.e. at which level each loop's data
//!   resides for that operand.
//!
//! The bound triple is a [`MappedLayer`], which validates legality
//! (coverage, capacity, allocation shape) and exposes every derived
//! quantity the latency/energy models and the simulator need: `Mem_DATA`,
//! `Mem_CC`, `Z`, top-irrelevant-loop runs, partial-sum visibility and
//! exact block refill counts.
//!
//! # Example
//!
//! ```
//! use ulm_arch::presets;
//! use ulm_mapping::{LoopStack, Mapping, MappedLayer, SpatialUnroll};
//! use ulm_workload::{Dim, Layer, Operand, Precision};
//!
//! let chip = presets::toy_chip();
//! let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
//! let spatial = SpatialUnroll::new(chip.spatial.clone());
//! // Temporal loops, innermost first: C8 then B2 then K2.
//! let stack = LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
//! let mapping = Mapping::with_greedy_alloc(&chip.arch, &layer, spatial, stack)?;
//! let view = MappedLayer::new(&layer, &chip.arch, &mapping)?;
//! assert_eq!(view.cc_spatial(), 32); // 8 * 2 * 2 temporal iterations
//! assert_eq!(view.cc_ideal_cycles(), 4 * 4 * 8 / 4);
//! # Ok::<(), ulm_mapping::MappingError>(())
//! ```

pub mod alloc;
pub mod fuse;
pub mod mapping;
pub mod spatial;
pub mod stack;
pub mod view;

pub use alloc::OperandAlloc;
pub use fuse::{EdgeResidency, FuseError, FusedSegment, SegmentResidency};
pub use mapping::{Mapping, MappingError};
pub use spatial::SpatialUnroll;
pub use stack::{LoopStack, TemporalLoop};
pub use view::MappedLayer;
