//! Per-operand allocation of temporal loops to memory levels.

use std::fmt;
use std::ops::Range;

/// For one operand, the cut points that assign the shared loop stack to
/// that operand's memory levels.
///
/// `bounds[L]` is the number of innermost loops held at levels `<= L`;
/// level `L` itself owns the loop range `bounds[L-1] .. bounds[L]`
/// (with `bounds[-1] = 0`). The sequence must be non-decreasing and its
/// last entry must equal the stack length (every loop lives somewhere).
///
/// # Example
///
/// ```
/// use ulm_mapping::OperandAlloc;
///
/// // 3 levels over a 5-loop stack: reg gets loops 0..2, LB 2..2 (none),
/// // GB 2..5.
/// let a = OperandAlloc::new(vec![2, 2, 5]);
/// assert_eq!(a.loops_at(0), 0..2);
/// assert_eq!(a.loops_at(1), 2..2);
/// assert_eq!(a.loops_at(2), 2..5);
/// assert_eq!(a.upper(1), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct OperandAlloc {
    bounds: Vec<usize>,
}

impl OperandAlloc {
    /// Builds an allocation from cut points.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not non-decreasing. (Consistency
    /// with a particular stack and chain is checked when a
    /// [`MappedLayer`](crate::MappedLayer) is formed.)
    pub fn new(bounds: Vec<usize>) -> Self {
        assert!(!bounds.is_empty(), "allocation needs at least one level");
        assert!(
            bounds.windows(2).all(|w| w[0] <= w[1]),
            "allocation bounds must be non-decreasing: {bounds:?}"
        );
        Self { bounds }
    }

    /// Single-level allocation holding all `n` loops.
    pub fn flat(n: usize) -> Self {
        Self { bounds: vec![n] }
    }

    /// Number of memory levels.
    pub fn levels(&self) -> usize {
        self.bounds.len()
    }

    /// Number of loops at levels `<= level` (the prefix length whose
    /// product is `Mem_CC` at that level).
    ///
    /// # Panics
    ///
    /// Panics if `level >= levels()`.
    pub fn upper(&self, level: usize) -> usize {
        self.bounds[level]
    }

    /// Number of loops strictly below `level`.
    pub fn lower(&self, level: usize) -> usize {
        if level == 0 {
            0
        } else {
            self.bounds[level - 1]
        }
    }

    /// The loop index range owned by `level`.
    pub fn loops_at(&self, level: usize) -> Range<usize> {
        self.lower(level)..self.upper(level)
    }

    /// The topmost cut (must equal the stack length in a valid mapping).
    pub fn top(&self) -> usize {
        *self.bounds.last().expect("bounds are non-empty")
    }

    /// The raw cut points.
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Removes all cut points in place, keeping the buffer. The
    /// allocation is invalid (empty) until bounds are pushed back.
    pub(crate) fn clear(&mut self) {
        self.bounds.clear();
    }

    /// Appends a cut point, preserving the non-decreasing invariant.
    pub(crate) fn push_bound(&mut self, bound: usize) {
        debug_assert!(
            self.bounds.last().is_none_or(|&last| last <= bound),
            "allocation bounds must be non-decreasing"
        );
        self.bounds.push(bound);
    }
}

impl fmt::Display for OperandAlloc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc{:?}", self.bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_stack() {
        let a = OperandAlloc::new(vec![1, 4, 4, 6]);
        let mut covered = vec![];
        for l in 0..a.levels() {
            covered.extend(a.loops_at(l));
        }
        assert_eq!(covered, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn flat_alloc() {
        let a = OperandAlloc::flat(3);
        assert_eq!(a.levels(), 1);
        assert_eq!(a.loops_at(0), 0..3);
        assert_eq!(a.top(), 3);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_bounds_rejected() {
        let _ = OperandAlloc::new(vec![3, 1]);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_bounds_rejected() {
        let _ = OperandAlloc::new(vec![]);
    }
}
