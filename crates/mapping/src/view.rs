//! [`MappedLayer`]: a validated (layer, architecture, mapping) binding
//! exposing all derived quantities.

use crate::{Mapping, MappingError};
use std::collections::HashMap;
use ulm_arch::{Architecture, MemoryId};
use ulm_workload::{DimSizes, Layer, Operand};

/// A layer bound to an architecture through a legal mapping.
///
/// Construction validates spatial fit, allocation shape, loop coverage and
/// memory capacity; afterwards every derived quantity of the paper's model
/// is available per `(operand, level)`:
///
/// * [`mem_data_words`](Self::mem_data_words) — `Mem_DATA`;
/// * [`mem_cc`](Self::mem_cc) — `Mem_CC` (turnaround cycles);
/// * [`z`](Self::z) — the number of periods `Z`;
/// * [`top_ir_run`](Self::top_ir_run) — the `ReqBW` multiplier of Table I;
/// * [`has_ir_above`](Self::has_ir_above) /
///   [`outputs_final_above`](Self::outputs_final_above) — partial-sum
///   round-trip visibility;
/// * [`refill_count`](Self::refill_count) — exact distinct-block transfer
///   counts for the energy model and the reference simulator.
pub struct MappedLayer<'a> {
    layer: &'a Layer,
    arch: &'a Architecture,
    mapping: &'a Mapping,
}

impl<'a> MappedLayer<'a> {
    /// Binds and validates.
    ///
    /// # Errors
    ///
    /// Returns the first [`MappingError`] found: spatial overflow,
    /// allocation/chain shape mismatch, unallocated loops, dimension
    /// under-coverage, or memory over-capacity (backing-store memories are
    /// exempt from the capacity check).
    pub fn new(
        layer: &'a Layer,
        arch: &'a Architecture,
        mapping: &'a Mapping,
    ) -> Result<Self, MappingError> {
        let v = Self {
            layer,
            arch,
            mapping,
        };
        v.validate()?;
        Ok(v)
    }

    /// Binds and validates like [`new`](Self::new), but reports failure
    /// as `None` instead of building a [`MappingError`] (whose payloads
    /// allocate), and reuses `residency` as scratch for the capacity
    /// check. This accepts exactly the mappings `new` accepts; it is the
    /// constructor the mapper's allocation-free search path uses.
    pub fn new_fast(
        layer: &'a Layer,
        arch: &'a Architecture,
        mapping: &'a Mapping,
        residency: &mut Vec<u64>,
    ) -> Option<Self> {
        let v = Self {
            layer,
            arch,
            mapping,
        };
        v.validate_fast(residency).then_some(v)
    }

    fn validate_fast(&self, residency: &mut Vec<u64>) -> bool {
        let macs = self.arch.mac_array().num_macs();
        if self.mapping.spatial().product() > macs {
            return false;
        }
        let h = self.arch.hierarchy();
        let total = self.mapping.stack().len();
        for op in Operand::all() {
            let chain = h.chain(op);
            let alloc = self.mapping.alloc(op);
            if alloc.levels() != chain.len() || alloc.top() != total {
                return false;
            }
        }
        for (dim, required) in self.layer.shape().dims().iter() {
            let mapped = self.mapping.spatial().extent(dim) * self.mapping.stack().extent(dim);
            if mapped < required {
                return false;
            }
        }
        // Capacity: per physical memory, summed over the operands it
        // holds (same arithmetic as `validate`, id-indexed scratch).
        residency.clear();
        residency.resize(h.memories().len(), 0);
        for op in Operand::all() {
            for (lvl, &mid) in h.chain(op).iter().enumerate() {
                residency[mid.0] += self.mem_data_bits(op, lvl);
            }
        }
        for (i, &needed_bits) in residency.iter().enumerate() {
            let mem = h.mem(MemoryId(i));
            if !mem.is_backing_store() && needed_bits > mem.mapper_capacity_bits() {
                return false;
            }
        }
        true
    }

    fn validate(&self) -> Result<(), MappingError> {
        let macs = self.arch.mac_array().num_macs();
        let product = self.mapping.spatial().product();
        if product > macs {
            return Err(MappingError::SpatialOverflow { product, macs });
        }
        let h = self.arch.hierarchy();
        let total = self.mapping.stack().len();
        for op in Operand::all() {
            let chain = h.chain(op);
            let alloc = self.mapping.alloc(op);
            if alloc.levels() != chain.len() {
                return Err(MappingError::LevelsMismatch {
                    operand: op,
                    expected: chain.len(),
                    got: alloc.levels(),
                });
            }
            if alloc.top() != total {
                return Err(MappingError::UnallocatedLoops {
                    operand: op,
                    allocated: alloc.top(),
                    total,
                });
            }
        }
        // Coverage: spatial x temporal extent >= layer bound per dim.
        for (dim, required) in self.layer.shape().dims().iter() {
            let mapped = self.mapping.spatial().extent(dim) * self.mapping.stack().extent(dim);
            if mapped < required {
                return Err(MappingError::Coverage {
                    dim,
                    required,
                    mapped,
                });
            }
        }
        // Capacity: per physical memory, summed over the operands it holds.
        let mut residency: HashMap<MemoryId, u64> = HashMap::new();
        for op in Operand::all() {
            for (lvl, &mid) in h.chain(op).iter().enumerate() {
                *residency.entry(mid).or_insert(0) += self.mem_data_bits(op, lvl);
            }
        }
        for (mid, needed_bits) in residency {
            let mem = h.mem(mid);
            if mem.is_backing_store() {
                continue;
            }
            let available_bits = mem.mapper_capacity_bits();
            if needed_bits > available_bits {
                return Err(MappingError::CapacityExceeded {
                    memory: mem.name().to_string(),
                    needed_bits,
                    available_bits,
                });
            }
        }
        Ok(())
    }

    /// The bound layer.
    pub fn layer(&self) -> &Layer {
        self.layer
    }

    /// The bound architecture.
    pub fn arch(&self) -> &Architecture {
        self.arch
    }

    /// The bound mapping.
    pub fn mapping(&self) -> &Mapping {
        self.mapping
    }

    // ------------------------------------------------------------------
    // Computation-phase scenario quantities (Fig. 1b).
    // ------------------------------------------------------------------

    /// `CC_ideal = total MAC ops / MAC array size` (may be fractional).
    pub fn cc_ideal(&self) -> f64 {
        self.layer.total_macs() as f64 / self.arch.mac_array().num_macs() as f64
    }

    /// `CC_ideal` rounded up to whole cycles.
    pub fn cc_ideal_cycles(&self) -> u64 {
        self.cc_ideal().ceil() as u64
    }

    /// `CC_spatial`: the temporal iteration count — computation latency
    /// with all stalls hidden but spatial under-utilization included.
    pub fn cc_spatial(&self) -> u64 {
        self.mapping.stack().total_cycles()
    }

    /// Spatial stall: `CC_spatial − CC_ideal` (Fig. 1b).
    pub fn spatial_stall(&self) -> f64 {
        self.cc_spatial() as f64 - self.cc_ideal()
    }

    // ------------------------------------------------------------------
    // Per-(operand, level) derived quantities.
    // ------------------------------------------------------------------

    /// Combined spatial+temporal loop extents at levels `<= level` of
    /// `op`'s chain.
    pub fn extents_at(&self, op: Operand, level: usize) -> DimSizes {
        let p = self.mapping.alloc(op).upper(level);
        let mut ext = self.mapping.spatial().extents();
        for (d, s) in self.mapping.stack().prefix_extents(p).iter() {
            ext.multiply(d, s);
        }
        ext
    }

    /// `Mem_DATA` in words: data of `op` resident at `level`.
    pub fn mem_data_words(&self, op: Operand, level: usize) -> u64 {
        self.layer.data_words(op, &self.extents_at(op, level))
    }

    /// `Mem_DATA` in bits (outputs at partial-sum precision — their
    /// resident width).
    pub fn mem_data_bits(&self, op: Operand, level: usize) -> u64 {
        self.mem_data_words(op, level) * self.layer.precision().bits(op)
    }

    /// `Mem_CC`: the turnaround period of `op`'s block at `level` — the
    /// product of all temporal loop sizes at levels `<= level`.
    pub fn mem_cc(&self, op: Operand, level: usize) -> u64 {
        self.mapping
            .stack()
            .prefix_cycles(self.mapping.alloc(op).upper(level))
    }

    /// `Z`: number of periods = total temporal cycles / `Mem_CC`.
    pub fn z(&self, op: Operand, level: usize) -> u64 {
        self.cc_spatial() / self.mem_cc(op, level)
    }

    /// Product of the *consecutive run* of loops irrelevant to `op` at the
    /// **top of `level`'s own loop range** — the `ReqBW` scale factor of
    /// Table I for non-double-buffered memories ("this minimum BW
    /// requirement needs to be scaled up by all top ir loop sizes").
    ///
    /// Returns 1 when the level's topmost loop is relevant or the level
    /// holds no loops.
    pub fn top_ir_run(&self, op: Operand, level: usize) -> u64 {
        let rel = self.layer.operand_relevance(op);
        let range = self.mapping.alloc(op).loops_at(level);
        let mut run = 1u64;
        for l in self.mapping.stack().loops()[range].iter().rev() {
            if rel.get(l.dim).is_irrelevant() {
                run *= l.size;
            } else {
                break;
            }
        }
        run
    }

    /// True if any loop *above* `level` in `op`'s allocation is irrelevant
    /// to `op`. For outputs this means the blocks leaving `level` are
    /// still partial sums that must return for further accumulation.
    pub fn has_ir_above(&self, op: Operand, level: usize) -> bool {
        let rel = self.layer.operand_relevance(op);
        let from = self.mapping.alloc(op).upper(level);
        self.mapping.stack().loops()[from..]
            .iter()
            .any(|l| rel.get(l.dim).is_irrelevant())
    }

    /// True when outputs crossing the interface above `level` are final
    /// (fully accumulated): no O-irrelevant loop remains above.
    pub fn outputs_final_above(&self, level: usize) -> bool {
        !self.has_ir_above(Operand::O, level)
    }

    /// Exact number of *distinct-content* block transfers into (W/I) or
    /// out of (O) `op`'s `level` over the whole layer.
    ///
    /// Walking the loops above `level` from innermost to outermost: a
    /// relevant loop multiplies the block count; an irrelevant loop
    /// multiplies it only if some relevant loop sits below it (it then
    /// *revisits* previously seen blocks), otherwise the block is simply
    /// reused in place and no transfer happens.
    ///
    /// For a canonical (greedily allocated) mapping this equals
    /// [`z`](Self::z); the analytical model uses `Z` per the paper, and
    /// the energy model and simulator use this exact count.
    pub fn refill_count(&self, op: Operand, level: usize) -> u64 {
        let rel = self.layer.operand_relevance(op);
        let from = self.mapping.alloc(op).upper(level);
        let mut count = 1u64;
        let mut seen_relevant = false;
        for l in self.mapping.stack().loops()[from..].iter() {
            if rel.get(l.dim).is_relevant() {
                count *= l.size;
                seen_relevant = true;
            } else if seen_relevant {
                count *= l.size;
            }
        }
        count
    }

    /// Number of *distinct* blocks of `op` seen above `level` (ignoring
    /// revisits): the product of relevant loop sizes above the level.
    pub fn distinct_blocks_above(&self, op: Operand, level: usize) -> u64 {
        let rel = self.layer.operand_relevance(op);
        let from = self.mapping.alloc(op).upper(level);
        self.mapping.stack().loops()[from..]
            .iter()
            .filter(|l| rel.get(l.dim).is_relevant())
            .map(|l| l.size)
            .product()
    }

    /// Non-fatal quality findings: dimensions covered with padding (the
    /// mapping iterates more than `ceil(bound / spatial)` would need) and
    /// non-canonical allocations (an irrelevant loop sits just above a
    /// level that could absorb it for free, which makes the analytical `Z`
    /// overcount transfers).
    pub fn lints(&self) -> Vec<String> {
        let mut notes = Vec::new();
        for (dim, required) in self.layer.shape().dims().iter() {
            let spatial = self.mapping.spatial().extent(dim);
            let temporal = self.mapping.stack().extent(dim);
            let needed = required.div_ceil(spatial);
            if temporal > needed {
                notes.push(format!(
                    "dimension {dim}: temporal extent {temporal} exceeds the \
                     ceil-coverage requirement {needed} (padding)"
                ));
            }
        }
        let h = self.arch.hierarchy();
        for op in Operand::all() {
            let rel = self.layer.operand_relevance(op);
            let chain = h.chain(op);
            for (lvl, &mid) in chain.iter().enumerate().take(chain.len().saturating_sub(1)) {
                let bound = self.mapping.alloc(op).upper(lvl);
                if let Some(next) = self.mapping.stack().loops().get(bound) {
                    if rel.get(next.dim).is_irrelevant() {
                        notes.push(format!(
                            "operand {op}: loop {next} directly above level \
                             `{}` is irrelevant and could be absorbed for free \
                             (non-canonical allocation; Z overcounts transfers)",
                            h.mem(mid).name()
                        ));
                    }
                }
            }
        }
        notes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LoopStack, OperandAlloc, SpatialUnroll};
    use ulm_arch::presets;
    use ulm_workload::{Dim, PerOperand, Precision};

    fn toy_setup() -> (ulm_arch::presets::PresetChip, Layer) {
        (
            presets::toy_chip(),
            Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24()),
        )
    }

    /// Toy mapping: spatial K2|B2, stack (inner->outer) C8, B2, K2.
    fn toy_mapping(chip: &ulm_arch::presets::PresetChip, layer: &Layer) -> Mapping {
        Mapping::with_greedy_alloc(
            &chip.arch,
            layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
        )
        .expect("fits")
    }

    #[test]
    fn scenario_quantities() {
        let (chip, layer) = toy_setup();
        let m = toy_mapping(&chip, &layer);
        let v = MappedLayer::new(&layer, &chip.arch, &m).unwrap();
        assert_eq!(v.cc_spatial(), 32);
        assert_eq!(v.cc_ideal_cycles(), 32); // 128 MACs / 4 = 32: fully mapped
        assert_eq!(v.spatial_stall(), 0.0);
    }

    #[test]
    fn mem_data_and_mem_cc() {
        let (chip, layer) = toy_setup();
        let m = toy_mapping(&chip, &layer);
        let v = MappedLayer::new(&layer, &chip.arch, &m).unwrap();
        // W regs: no temporal loops -> block = spatial K2 = 2 words.
        assert_eq!(v.mem_data_words(Operand::W, 0), 2);
        assert_eq!(v.mem_cc(Operand::W, 0), 1);
        assert_eq!(v.z(Operand::W, 0), 32);
        // O regs absorb C8 (irrelevant): block stays K2xB2 = 4 words but
        // the period becomes 8 cycles.
        assert_eq!(v.mem_data_words(Operand::O, 0), 4);
        assert_eq!(v.mem_cc(Operand::O, 0), 8);
        assert_eq!(v.z(Operand::O, 0), 4);
        // Top level holds the full tensors.
        assert_eq!(v.mem_data_words(Operand::W, 1), 4 * 8);
        assert_eq!(v.mem_cc(Operand::W, 1), 32);
    }

    #[test]
    fn top_ir_run_detects_keep_out_scale() {
        let (chip, layer) = toy_setup();
        let m = toy_mapping(&chip, &layer);
        let v = MappedLayer::new(&layer, &chip.arch, &m).unwrap();
        // O-Reg's own loops: [C8]; C is irrelevant to O -> run = 8.
        assert_eq!(v.top_ir_run(Operand::O, 0), 8);
        // W-Reg holds no loops -> run = 1.
        assert_eq!(v.top_ir_run(Operand::W, 0), 1);
        // Top level of W holds C8,B2,K2; topmost K2 is relevant -> 1.
        assert_eq!(v.top_ir_run(Operand::W, 1), 1);
    }

    #[test]
    fn ir_above_and_output_finality() {
        let (chip, layer) = toy_setup();
        let m = toy_mapping(&chip, &layer);
        let v = MappedLayer::new(&layer, &chip.arch, &m).unwrap();
        // Above O-Reg (loops B2,K2) nothing is irrelevant to O -> final.
        assert!(v.outputs_final_above(0));
        // Above W-Reg: C8 (r), B2 (ir), K2 (r) -> ir present.
        assert!(v.has_ir_above(Operand::W, 0));
    }

    #[test]
    fn refill_counts_collapse_pure_reuse() {
        let (chip, layer) = toy_setup();
        // Stack (inner->outer): C8, B2, K2; W-Reg takes nothing.
        let m = toy_mapping(&chip, &layer);
        let v = MappedLayer::new(&layer, &chip.arch, &m).unwrap();
        // W above regs: C8 (r) -> x8, B2 (ir after r) -> x2 (revisit),
        // K2 (r) -> x2. Total 32 = Z: canonical.
        assert_eq!(v.refill_count(Operand::W, 0), 32);
        assert_eq!(v.z(Operand::W, 0), 32);
        // O above regs: loops B2 (r), K2 (r) -> 4 drains, no revisits.
        assert_eq!(v.refill_count(Operand::O, 0), 4);
        assert_eq!(v.distinct_blocks_above(Operand::O, 0), 4);
    }

    #[test]
    fn non_canonical_alloc_is_linted_and_overcounts() {
        let (chip, layer) = toy_setup();
        // Force W-Reg to hold nothing while B2 (ir for W) sits directly
        // above: stack B2 innermost; greedy would absorb it, we don't.
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let stack = LoopStack::from_pairs(&[(Dim::B, 2), (Dim::C, 8), (Dim::K, 2)]);
        let allocs = PerOperand::new(
            OperandAlloc::new(vec![0, 3]), // W: non-canonical
            OperandAlloc::new(vec![0, 3]),
            OperandAlloc::new(vec![0, 3]),
        );
        let m = Mapping::new(spatial, stack, allocs);
        let v = MappedLayer::new(&layer, &chip.arch, &m).unwrap();
        // Z counts 32 periods but only 16 carry new data.
        assert_eq!(v.z(Operand::W, 0), 32);
        assert_eq!(v.refill_count(Operand::W, 0), 16);
        let lints = v.lints();
        assert!(
            lints.iter().any(|l| l.contains("non-canonical")),
            "{lints:?}"
        );
    }

    #[test]
    fn validation_rejects_bad_mappings() {
        let (chip, layer) = toy_setup();
        // Spatial overflow.
        let m = Mapping::new(
            SpatialUnroll::new(vec![(Dim::K, 64)]),
            LoopStack::empty(),
            PerOperand::from_fn(|_| OperandAlloc::new(vec![0, 0])),
        );
        assert!(matches!(
            MappedLayer::new(&layer, &chip.arch, &m),
            Err(MappingError::SpatialOverflow { .. })
        ));
        // Coverage shortfall: nothing iterates C=8.
        let m = Mapping::new(
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::B, 2), (Dim::K, 2)]),
            PerOperand::from_fn(|_| OperandAlloc::new(vec![0, 2])),
        );
        assert!(matches!(
            MappedLayer::new(&layer, &chip.arch, &m),
            Err(MappingError::Coverage { dim: Dim::C, .. })
        ));
        // Wrong level count.
        let m = Mapping::new(
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
            PerOperand::from_fn(|_| OperandAlloc::flat(3)),
        );
        assert!(matches!(
            MappedLayer::new(&layer, &chip.arch, &m),
            Err(MappingError::LevelsMismatch { .. })
        ));
        // Unallocated loops.
        let m = Mapping::new(
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
            PerOperand::from_fn(|_| OperandAlloc::new(vec![0, 2])),
        );
        assert!(matches!(
            MappedLayer::new(&layer, &chip.arch, &m),
            Err(MappingError::UnallocatedLoops { .. })
        ));
        // Capacity: cram everything into the W regs.
        let m = Mapping::new(
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
            PerOperand::new(
                OperandAlloc::new(vec![3, 3]),
                OperandAlloc::new(vec![0, 3]),
                OperandAlloc::new(vec![1, 3]),
            ),
        );
        assert!(matches!(
            MappedLayer::new(&layer, &chip.arch, &m),
            Err(MappingError::CapacityExceeded { .. })
        ));
    }

    #[test]
    fn conv_layer_input_halo_in_mem_data() {
        // A real conv checks the partial-relevance path end to end.
        let chip = presets::toy_chip();
        let layer = Layer::conv2d(
            "c",
            ulm_workload::LayerShape::conv(2, 2, 2, 4, 4, 3, 3),
            Precision::int8_acc24(),
        );
        // Spatial K2|B2 covers K and B; temporal: OX4, OY4, C2, FY3, FX3.
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let stack = LoopStack::from_pairs(&[
            (Dim::FX, 3),
            (Dim::FY, 3),
            (Dim::OX, 4),
            (Dim::OY, 4),
            (Dim::C, 2),
        ]);
        let m = Mapping::with_greedy_alloc(&chip.arch, &layer, spatial, stack).unwrap();
        let v = MappedLayer::new(&layer, &chip.arch, &m).unwrap();
        // Full input at the top: B2 x C2 x iy6 x ix6.
        assert_eq!(v.mem_data_words(Operand::I, 1), 2 * 2 * 6 * 6);
    }
}
